// Communicator: the per-rank handle to a message-passing world.
//
// Semantics follow MPI (see the LLNL MPI model this substrate reproduces):
//  - two-sided, tag + source matched point-to-point messages;
//  - non-overtaking delivery for a fixed (source, dest) pair;
//  - collectives must be entered by every rank of the communicator in the
//    same program order (they are sequenced with an internal tag space);
//  - sends are always eager/buffered, so a send never deadlocks.
//
// All typed operations require trivially-copyable element types; richer
// payloads (strings, record batches) use the byte/string interfaces or the
// serialization helpers in odin/seamless.
#pragma once

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/context.hpp"
#include "comm/message.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::comm {

class Communicator;

/// Handle to a posted non-blocking receive. Because sends are eager, isend
/// completes immediately and needs no handle; PendingRecv is the one
/// genuinely asynchronous operation.
///
/// A message captured by ready() is owned by the handle; receive stats are
/// counted at capture time. Destroying a handle that still owns an
/// unconsumed message re-queues it at the front of the mailbox (and backs
/// the capture out of the stats), so the message is never silently lost —
/// a later matching receive observes it exactly as if the handle had never
/// existed.
class PendingRecv {
 public:
  PendingRecv(Communicator* comm, int source, int tag)
      : comm_(comm), source_(source), tag_(tag) {}
  ~PendingRecv();

  PendingRecv(const PendingRecv&) = delete;
  PendingRecv& operator=(const PendingRecv&) = delete;
  PendingRecv(PendingRecv&& other) noexcept
      : comm_(other.comm_),
        source_(other.source_),
        tag_(other.tag_),
        captured_(std::move(other.captured_)),
        consumed_(other.consumed_) {
    other.captured_.reset();
    other.consumed_ = true;
  }
  PendingRecv& operator=(PendingRecv&&) = delete;

  /// Non-blocking: true once the matching message has arrived (and has been
  /// captured into this handle).
  bool ready();

  /// Blocks until the message arrives and returns it. May be called once.
  Envelope wait();

  /// Decodes a waited envelope into typed elements.
  template <class T>
  static std::vector<T> decode(const Envelope& env) {
    static_assert(std::is_trivially_copyable_v<T>);
    require<CommError>(env.payload.size() % sizeof(T) == 0,
                       "PendingRecv::decode: payload size not a multiple of "
                       "element size");
    std::vector<T> out(env.payload.size() / sizeof(T));
    // An empty payload has a null data() pointer, and memcpy with a null
    // source is UB even for size 0 — guard like recv_string does.
    if (!env.payload.empty()) {
      std::memcpy(out.data(), env.payload.data(), env.payload.size());
    }
    return out;
  }

  /// Consuming decode: when the payload is an adopted std::vector<T> that
  /// this envelope solely owns (the zero-copy move-send fast path), the
  /// vector is moved straight out — no copy end to end. Falls back to the
  /// copying decode otherwise.
  template <class T>
  static std::vector<T> take(Envelope&& env) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (auto v = env.payload.take_vector<T>()) return std::move(*v);
    return decode<T>(env);
  }

 private:
  Communicator* comm_;
  int source_;
  int tag_;
  std::optional<Envelope> captured_;
  bool consumed_ = false;
};

/// Handle to a non-blocking send. Eager sends (payload at or below
/// CommConfig::eager_threshold) complete at post time and return an
/// already-ready future. Rendezvous sends alias the caller's memory: the
/// future completes only when every envelope referencing it has been
/// consumed (received, dropped by fault injection, or replaced by a
/// corruption clone) — MPI send-completion semantics: ready() means "the
/// buffer is yours to reuse". Under duplicate injection both copies must
/// be drained before the future completes.
class SendFuture {
 public:
  SendFuture() = default;  // eager send: nothing outstanding

  bool ready() const { return !state_ || state_->released(); }

  /// Blocks until the buffer is released. Polls the world's failure flags
  /// so an abort, revocation, or the caller's own fault-injected death
  /// surfaces as the matching error instead of a hang.
  void wait() {
    if (!state_) return;
    while (!state_->wait_for(std::chrono::milliseconds(25))) {
      if (ctx_->is_killed(rank_)) {
        throw RankKilledError(
            "SendFuture::wait on a killed rank (fault injection)");
      }
      if (ctx_->abort_flag().load(std::memory_order_relaxed)) {
        throw CommError("SendFuture::wait aborted: another rank failed");
      }
    }
  }

 private:
  friend class Communicator;
  SendFuture(std::shared_ptr<RendezvousState> state,
             std::shared_ptr<Context> ctx, int rank)
      : state_(std::move(state)), ctx_(std::move(ctx)), rank_(rank) {}

  std::shared_ptr<RendezvousState> state_;
  std::shared_ptr<Context> ctx_;
  int rank_ = -1;
};

/// Completion state shared between a non-blocking collective's state
/// machine (owned by the communicator's progress list) and the CollFuture
/// the caller holds.
struct NbCollState {
  std::atomic<bool> done{false};
};

/// Handle to a non-blocking collective (ibarrier/iallreduce). The
/// operation only advances inside Communicator::progress(), GHEX-style;
/// wait() drives progress() until completion and honours the configured
/// receive deadline.
class CollFuture {
 public:
  CollFuture() = default;
  bool ready() const {
    return !state_ || state_->done.load(std::memory_order_acquire);
  }
  void wait();  // defined after Communicator (drives progress())

 private:
  friend class Communicator;
  CollFuture(std::shared_ptr<NbCollState> state, Communicator* comm)
      : state_(std::move(state)), comm_(comm) {}
  std::shared_ptr<NbCollState> state_;
  Communicator* comm_ = nullptr;
};

class Communicator {
 public:
  Communicator(std::shared_ptr<Context> ctx, int rank)
      : ctx_(std::move(ctx)), rank_(rank) {
    require<CommError>(rank_ >= 0 && rank_ < ctx_->size(),
                       "Communicator: rank out of range");
  }

  // Copies share the world but not the posted non-blocking operations:
  // those belong to the handle that posted them (its progress() loop is
  // the only driver holding their futures).
  Communicator(const Communicator& other)
      : ctx_(other.ctx_),
        rank_(other.rank_),
        seq_(other.seq_),
        coll_deadline_(other.coll_deadline_) {}
  Communicator& operator=(const Communicator& other) {
    ctx_ = other.ctx_;
    rank_ = other.rank_;
    seq_ = other.seq_;
    coll_deadline_ = other.coll_deadline_;
    posted_.clear();
    return *this;
  }
  Communicator(Communicator&&) = default;
  Communicator& operator=(Communicator&&) = default;

  int rank() const { return rank_; }
  int size() const { return ctx_->size(); }

  CommStats& stats() { return ctx_->stats(rank_); }
  const CommStats& stats() const { return ctx_->stats(rank_); }

  /// Sums every rank's counters (call after the parallel region ends, or
  /// from a barrier-synchronized point).
  CommStats aggregate_stats() const {
    CommStats total;
    for (int r = 0; r < size(); ++r) total += ctx_->stats(r);
    return total;
  }

  // ---- point-to-point: bytes ------------------------------------------

  void send_bytes(std::span<const std::byte> data, int dest, int tag) {
    check_user_tag(tag);
    send_bytes_internal(data, dest, tag, /*internal=*/false);
  }

  /// Blocking receive into a freshly sized vector.
  Status recv_bytes(std::vector<std::byte>& out, int source = kAnySource,
                    int tag = kAnyTag) {
    Envelope env = pop(source, tag);
    Status st{env.source, env.tag, env.payload.size()};
    out = env.payload.take_bytes();
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += st.bytes;
    return st;
  }

  /// Blocking probe: metadata of the next matching message. Honours the
  /// CommConfig receive deadline (RecvTimeoutError past it).
  Status probe(int source = kAnySource, int tag = kAnyTag) {
    try {
      return ctx_->mailbox(rank_).probe(source, tag, wait_options());
    } catch (const RecvTimeoutError&) {
      ++stats().timeouts;
      throw;
    } catch (const RankKilledError&) {
      throw;
    } catch (const CommError&) {
      rethrow_refined();
    }
  }

  /// Non-blocking probe. Same failure semantics as probe(): a killed or
  /// revoked caller throws instead of polling forever, an aborted world
  /// surfaces the refined error (DeadlockError when the watchdog fired),
  /// and a specific dead peer with nothing queued throws PeerKilledError —
  /// previously iprobe bypassed all of this and returned nullopt, so a
  /// poll loop over a dead peer spun until the watchdog killed the world.
  std::optional<Status> iprobe(int source = kAnySource, int tag = kAnyTag) {
    if (ctx_->is_killed(rank_)) {
      throw RankKilledError("iprobe on a killed rank (fault injection)");
    }
    if (ctx_->is_revoked()) {
      throw RevokedError("iprobe on a revoked communicator");
    }
    // Match first: a message the peer sent before dying is still
    // deliverable, exactly like the blocking probe's mailbox scan.
    auto st = ctx_->mailbox(rank_).try_probe(source, tag);
    if (st.has_value()) return st;
    if (source != kAnySource && source != rank_ && ctx_->is_killed(source)) {
      throw PeerKilledError(
          source, util::cat("iprobe: peer rank ", source,
                            " was killed (fault injection)"));
    }
    if (ctx_->abort_flag().load(std::memory_order_relaxed)) {
      if (ctx_->deadlocked()) throw DeadlockError(ctx_->deadlock_report());
      throw CommError("iprobe aborted: another rank failed");
    }
    return std::nullopt;
  }

  // ---- point-to-point: typed ------------------------------------------

  template <class T>
  void send(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(data), dest, tag);
  }

  /// Zero-copy send: adopts the vector's storage into the envelope instead
  /// of copying it. A recv_vector<T> on the other side moves the same
  /// storage back out, so large transfers cost no payload copy at all
  /// (CommStats::zero_copy_bytes counts them; bytes_copied stays flat).
  template <class T>
  void send(std::vector<T>&& data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_user_tag(tag);
    send_buffer(Buffer::adopt(std::move(data)), dest, tag,
                /*internal=*/false);
  }

  template <class T>
  void send_value(const T& value, int dest, int tag) {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  /// Strict receive: the incoming message must contain exactly buf.size()
  /// elements; a mismatch is a CommError (catches size bugs early — the
  /// failure-injection tests rely on this).
  template <class T>
  Status recv(std::span<T> buf, int source = kAnySource, int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += env.payload.size();
    require<CommError>(
        env.payload.size() == buf.size_bytes(),
        util::cat("recv: message of ", env.payload.size(),
                  " bytes does not match buffer of ", buf.size_bytes(),
                  " bytes (source ", env.source, ", tag ", env.tag, ")"));
    // Empty payloads carry a null data() pointer; memcpy from (nullptr, 0)
    // is UB, so guard like recv_string does.
    if (!env.payload.empty()) {
      std::memcpy(buf.data(), env.payload.data(), env.payload.size());
    }
    return Status{env.source, env.tag, env.payload.size()};
  }

  /// Variable-size receive.
  template <class T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag,
                             Status* status_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += env.payload.size();
    if (status_out != nullptr) {
      *status_out = Status{env.source, env.tag, env.payload.size()};
    }
    return PendingRecv::take<T>(std::move(env));
  }

  template <class T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) {
    T value{};
    recv(std::span<T>(&value, 1), source, tag);
    return value;
  }

  void send_string(const std::string& text, int dest, int tag) {
    send_bytes(std::as_bytes(std::span<const char>(text.data(), text.size())),
               dest, tag);
  }

  std::string recv_string(int source = kAnySource, int tag = kAnyTag) {
    std::vector<std::byte> raw;
    recv_bytes(raw, source, tag);
    // Empty payloads have a null data() pointer; constructing a string from
    // (nullptr, 0) is UB, so guard that case explicitly.
    if (raw.empty()) return std::string();
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

  // ---- deadline-bounded receives ----------------------------------------
  // Like their unbounded counterparts but with an explicit per-call
  // deadline that overrides CommConfig::recv_timeout; they throw
  // RecvTimeoutError when it expires. The ODIN driver's ack/retry protocol
  // is built on these.

  Status recv_bytes_within(std::chrono::milliseconds timeout,
                           std::vector<std::byte>& out,
                           int source = kAnySource, int tag = kAnyTag) {
    Envelope env = pop(source, tag, timeout);
    Status st{env.source, env.tag, env.payload.size()};
    out = env.payload.take_bytes();
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += st.bytes;
    return st;
  }

  template <class T>
  T recv_value_within(std::chrono::milliseconds timeout,
                      int source = kAnySource, int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = pop(source, tag, timeout);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += env.payload.size();
    require<CommError>(
        env.payload.size() == sizeof(T),
        util::cat("recv_value_within: message of ", env.payload.size(),
                  " bytes does not match value of ", sizeof(T), " bytes"));
    T value{};
    std::memcpy(&value, env.payload.data(), sizeof(T));
    return value;
  }

  // ---- framework-internal point-to-point --------------------------------
  // Subsystem protocols (ODIN halo exchange and similar) send on reserved
  // tags >= kInternalP2PBase so they can never collide with user traffic
  // or with collective sequencing. Accounting is ordinary p2p: these are
  // point-to-point messages, just on a fenced-off tag range.

  template <class T>
  void send_internal(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_internal_tag(tag);
    send_bytes_internal(std::as_bytes(data), dest, tag, /*internal=*/false);
  }

  /// Zero-copy internal send (halo payloads, Import/Export packs).
  /// Accounting stays ordinary p2p: p2p_bytes_sent records the logical
  /// volume while bytes_copied stays untouched — the distinction the
  /// transport-tier benches assert on.
  template <class T>
  void send_internal(std::vector<T>&& data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_internal_tag(tag);
    send_buffer(Buffer::adopt(std::move(data)), dest, tag,
                /*internal=*/false);
  }

  template <class T>
  void send_value_internal(const T& value, int dest, int tag) {
    send_internal(std::span<const T>(&value, 1), dest, tag);
  }

  template <class T>
  T recv_value_internal(int source, int tag) {
    check_internal_tag(tag);
    return recv_value<T>(source, tag);
  }

  // ---- failure observability --------------------------------------------

  /// True when fault injection has killed `rank` (drivers use this to turn
  /// a missing ack into WorkerLostError instead of retrying forever).
  bool rank_dead(int rank) const { return ctx_->is_killed(rank); }

  /// Payload bytes currently buffered in this rank's mailbox.
  std::size_t queued_bytes() const {
    return ctx_->mailbox(rank_).queued_bytes();
  }

  // ---- non-blocking -----------------------------------------------------
  // GHEX-style transport surface: futures for isend/irecv, callbacks
  // posted to an explicit progress() loop, and non-blocking collectives
  // (ibarrier/iallreduce) that only advance inside progress().

  /// Non-blocking send. Payloads at or below CommConfig::eager_threshold
  /// are copied eagerly (the future is immediately ready); larger ones
  /// hand off by rendezvous — the envelope aliases `data` and the future
  /// completes when the receiver releases it, so the caller must keep
  /// `data` alive and unmodified until then (MPI isend semantics).
  template <class T>
  SendFuture isend(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_user_tag(tag);
    return isend_bytes(std::as_bytes(data), dest, tag);
  }

  /// Internal-tag variant (subsystem protocols above kInternalP2PBase).
  template <class T>
  SendFuture isend_internal(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_internal_tag(tag);
    return isend_bytes(std::as_bytes(data), dest, tag);
  }

  /// Posts a receive; completion is observed through the returned handle.
  PendingRecv irecv(int source = kAnySource, int tag = kAnyTag) {
    check_user_tag_or_any(tag);
    return PendingRecv(this, source, tag);
  }

  /// Internal-tag variant: lets subsystem protocols (halo exchange,
  /// split-phase Import) post their receives before compute.
  PendingRecv irecv_internal(int source, int tag) {
    check_internal_tag(tag);
    return PendingRecv(this, source, tag);
  }

  /// Callback-driven receive: `cb` runs inside a later progress() call on
  /// this rank's thread once a matching message arrives.
  using RecvCallback = std::function<void(Envelope)>;
  void irecv(int source, int tag, RecvCallback cb) {
    check_user_tag_or_any(tag);
    posted_.push_back(
        std::make_unique<CallbackRecvOp>(source, tag, std::move(cb)));
  }

  /// Drives every posted operation (callback receives and non-blocking
  /// collectives) one step; returns how many completed in this call.
  /// Rank-local and non-blocking: call it in a loop, GHEX-style.
  std::size_t progress() {
    poll_async_failures();
    std::size_t completed = 0;
    for (std::size_t i = 0; i < posted_.size();) {
      if (posted_[i]->step(*this)) {
        posted_.erase(posted_.begin() + static_cast<std::ptrdiff_t>(i));
        ++completed;
      } else {
        ++i;
      }
    }
    return completed;
  }

  /// Posted operations not yet complete (tests/instrumentation).
  std::size_t pending_operations() const { return posted_.size(); }

  /// Non-blocking dissemination barrier. Same wire format and sequencing
  /// as barrier(), advanced only by progress()/wait().
  CollFuture ibarrier() {
    obs::Span span = coll_span("ibarrier", 0);
    auto state = std::make_shared<NbCollState>();
    posted_.push_back(std::make_unique<IBarrierOp>(*this, state));
    return CollFuture(std::move(state), this);
  }

  /// Non-blocking allreduce (recursive doubling with the same
  /// non-power-of-two fold/fan-back as the blocking path). `in`/`out`
  /// must stay alive until the future completes; `out` must be sized like
  /// `in` on every rank.
  template <class T, class Op>
  CollFuture iallreduce(std::span<const T> in, std::span<T> out, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    require<CommError>(out.size() == in.size(),
                       "iallreduce: output span has wrong size");
    obs::Span span = coll_span("iallreduce", in.size_bytes(),
                               CollectiveAlgo::kRecursiveDoubling);
    note_algo(CollectiveAlgo::kRecursiveDoubling);
    auto state = std::make_shared<NbCollState>();
    posted_.push_back(
        std::make_unique<IAllreduceOp<T, Op>>(*this, in, out, op, state));
    return CollFuture(std::move(state), this);
  }

  // ---- collectives ------------------------------------------------------
  // Every collective must be entered by all ranks in the same order.
  // Reduction functors must be associative and commutative.

  /// Peers of the dissemination barrier at round distance `k`: every rank
  /// signals (rank + k) mod p and waits on (rank - k) mod p. Public and
  /// static so the pattern has a direct unit test — the previous inline
  /// expression `(rank - k % p + p) % p` parenthesized the reduction
  /// mod p around `k` alone and only matched the intended (rank - k) mod p
  /// because the loop bound keeps k < p.
  static int dissemination_send_peer(int rank, int k, int p) {
    return (rank + k % p) % p;
  }
  static int dissemination_recv_peer(int rank, int k, int p) {
    return ((rank - k) % p + p) % p;
  }

  void barrier() {
    obs::Span span = coll_span("barrier", 0);
    CollectiveDeadline deadline_guard(*this);
    const std::uint64_t seq = next_seq();
    const int p = size();
    for (int k = 1; k < p; k <<= 1) {
      const int phase = phase_of(k);
      coll_send(std::span<const std::byte>{},
                dissemination_send_peer(rank_, k, p), coll_tag(seq, phase));
      coll_recv_any_size(dissemination_recv_peer(rank_, k, p),
                         coll_tag(seq, phase));
    }
  }

  /// Binomial-tree broadcast of a fixed-size buffer.
  template <class T>
  void broadcast(std::span<T> data, int root,
                 CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    algo = resolve_rooted(algo, "broadcast");
    obs::Span span = coll_span("broadcast", data.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    const std::uint64_t seq = next_seq();
    const int p = size();
    if (algo == CollectiveAlgo::kLinear) {
      // Flat root-funneled reference: root sends the whole buffer to every
      // rank (the baseline the benches compare the tree schedules against).
      if (rank_ == root) {
        for (int r = 0; r < p; ++r) {
          if (r != root) {
            coll_send(std::as_bytes(std::span<const T>(data)), r,
                      coll_tag(seq, 0));
          }
        }
      } else {
        coll_recv_exact(std::as_writable_bytes(data), root, coll_tag(seq, 0));
      }
      return;
    }
    const int vrank = (rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int src = (vrank - mask + root) % p;
        coll_recv_exact(std::as_writable_bytes(data), src, coll_tag(seq, 0));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < p) {
        const int dst = (vrank + mask + root) % p;
        coll_send(std::as_bytes(std::span<const T>(data)), dst,
                  coll_tag(seq, 0));
      }
      mask >>= 1;
    }
  }

  template <class T>
  T broadcast_value(T value, int root,
                    CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    broadcast(std::span<T>(&value, 1), root, algo);
    return value;
  }

  /// Broadcast of a variable-length string (length first, then bytes).
  std::string broadcast_string(const std::string& text, int root) {
    std::uint64_t len = text.size();
    len = broadcast_value(len, root);
    std::string out = (rank_ == root) ? text : std::string(len, '\0');
    if (len > 0) broadcast(std::span<char>(out.data(), out.size()), root);
    return out;
  }

  /// Element-wise reduction to `root` (binomial tree; kLinear forces the
  /// flat every-rank-sends-to-root funnel). `out` must be sized like `in`
  /// on the root; other ranks may pass an empty span.
  template <class T, class Op>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root,
              CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    algo = resolve_rooted(algo, "reduce");
    obs::Span span = coll_span("reduce", in.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    const std::uint64_t seq = next_seq();
    const int p = size();
    if (algo == CollectiveAlgo::kLinear) {
      // Flat funnel: root receives and folds every rank's vector in rank
      // order — (p-1)*n bytes concentrated at the root.
      if (rank_ == root) {
        require<CommError>(out.size() == in.size(),
                           "reduce: root output span has wrong size");
        std::copy(in.begin(), in.end(), out.begin());
        std::vector<T> incoming(in.size());
        for (int r = 0; r < p; ++r) {
          if (r == root) continue;
          coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)), r,
                          coll_tag(seq, 0));
          combine(out, std::span<const T>(incoming), op);
        }
      } else {
        coll_send(std::as_bytes(in), root, coll_tag(seq, 0));
      }
      return;
    }
    const int vrank = (rank_ - root + p) % p;
    std::vector<T> partial(in.begin(), in.end());
    int mask = 1;
    while (mask < p) {
      if ((vrank & mask) == 0) {
        const int vsrc = vrank | mask;
        if (vsrc < p) {
          const int src = (vsrc + root) % p;
          std::vector<T> incoming(in.size());
          coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)), src,
                          coll_tag(seq, phase_of(mask)));
          for (std::size_t i = 0; i < partial.size(); ++i) {
            partial[i] = op(partial[i], incoming[i]);
          }
        }
      } else {
        const int dst = ((vrank & ~mask) + root) % p;
        coll_send(std::as_bytes(std::span<const T>(partial)), dst,
                  coll_tag(seq, phase_of(mask)));
        break;
      }
      mask <<= 1;
    }
    if (rank_ == root) {
      require<CommError>(out.size() == in.size(),
                         "reduce: root output span has wrong size");
      std::copy(partial.begin(), partial.end(), out.begin());
    }
  }

  template <class T, class Op>
  T reduce_value(T value, Op op, int root) {
    T out{};
    reduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, root);
    return out;  // meaningful only on root
  }

  /// Allreduce. kAuto picks recursive doubling below
  /// CollectivePolicy::allreduce_long_bytes and Rabenseifner
  /// (reduce-scatter + allgather) at or above it; kLinear forces the old
  /// root-funneled reduce+broadcast reference. `out` must be sized like
  /// `in` on every rank; every rank must pass the same `algo`.
  template <class T, class Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op,
                 CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    require<CommError>(out.size() == in.size(),
                       "allreduce: output span has wrong size");
    algo = resolve_allreduce(in.size_bytes(), algo);
    obs::Span span = coll_span("allreduce", in.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    if (algo == CollectiveAlgo::kLinear) {
      reduce(in, out, op, 0, CollectiveAlgo::kLinear);
      broadcast(out, 0, CollectiveAlgo::kLinear);
      return;
    }
    std::copy(in.begin(), in.end(), out.begin());
    const int p = size();
    const std::uint64_t seq = next_seq();
    if (p == 1 || in.empty()) return;  // same branch on every rank
    const std::size_t n = in.size();

    // Non-power-of-two handling (both algorithms): the first 2*rem ranks
    // fold pairwise onto the odd member, the surviving pof2 "core" ranks
    // run the power-of-two schedule, and the result is fanned back out.
    int pof2 = 1;
    while (pof2 * 2 <= p) pof2 *= 2;
    const int rem = p - pof2;
    std::vector<T> incoming(n);
    int newrank;
    if (rank_ < 2 * rem) {
      if (rank_ % 2 == 0) {
        coll_send(std::as_bytes(std::span<const T>(out)), rank_ + 1,
                  coll_tag(seq, 0));
        newrank = -1;  // folded out until the final fan-back
      } else {
        coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)),
                        rank_ - 1, coll_tag(seq, 0));
        combine(out, std::span<const T>(incoming), op);
        newrank = rank_ / 2;
      }
    } else {
      newrank = rank_ - rem;
    }

    // Maps a core rank back to its real rank.
    auto real_of = [&](int nr) { return nr < rem ? nr * 2 + 1 : nr + rem; };

    if (newrank >= 0) {
      if (algo == CollectiveAlgo::kRecursiveDoubling) {
        int phase = 1;
        for (int mask = 1; mask < pof2; mask <<= 1, ++phase) {
          const int dst = real_of(newrank ^ mask);
          coll_send(std::as_bytes(std::span<const T>(out)), dst,
                    coll_tag(seq, phase));
          coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)), dst,
                          coll_tag(seq, phase));
          note_phase_bytes(n * sizeof(T));
          combine(out, std::span<const T>(incoming), op);
        }
      } else {  // kRabenseifner
        rabenseifner_core(out, op, seq, pof2, newrank, real_of);
      }
    }

    // Fan the finished vector back to the folded-out even ranks. The phase
    // index is fixed (not derived from the loop counters) so both sides of
    // each pair agree regardless of the core schedule's depth.
    if (rank_ < 2 * rem) {
      if (rank_ % 2 == 0) {
        coll_recv_exact(std::as_writable_bytes(out), rank_ + 1,
                        coll_tag(seq, kCollPhases - 1));
      } else {
        coll_send(std::as_bytes(std::span<const T>(out)), rank_ - 1,
                  coll_tag(seq, kCollPhases - 1));
      }
    }
  }

  template <class T, class Op>
  T allreduce_value(T value, Op op,
                    CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, algo);
    return out;
  }

  /// Inclusive prefix scan along rank order (chain algorithm).
  template <class T, class Op>
  T scan_inclusive(T value, Op op) {
    obs::Span span = coll_span("scan_inclusive", sizeof(T));
    CollectiveDeadline deadline_guard(*this);
    const std::uint64_t seq = next_seq();
    T acc = value;
    if (rank_ > 0) {
      T prev{};
      coll_recv_exact(
          std::as_writable_bytes(std::span<T>(&prev, 1)), rank_ - 1,
          coll_tag(seq, 0));
      acc = op(prev, value);
    }
    if (rank_ + 1 < size()) {
      coll_send(std::as_bytes(std::span<const T>(&acc, 1)), rank_ + 1,
                coll_tag(seq, 0));
    }
    return acc;
  }

  /// Exclusive prefix scan; rank 0 receives `identity`.
  template <class T, class Op>
  T scan_exclusive(T value, Op op, T identity) {
    obs::Span span = coll_span("scan_exclusive", sizeof(T));
    CollectiveDeadline deadline_guard(*this);
    const T inc = scan_inclusive(value, op);
    // Rotate: every rank wants the inclusive scan of the previous rank.
    const std::uint64_t seq = next_seq();
    if (rank_ + 1 < size()) {
      coll_send(std::as_bytes(std::span<const T>(&inc, 1)), rank_ + 1,
                coll_tag(seq, 0));
    }
    T out = identity;
    if (rank_ > 0) {
      coll_recv_exact(std::as_writable_bytes(std::span<T>(&out, 1)), rank_ - 1,
                      coll_tag(seq, 0));
    }
    return out;
  }

  /// Equal-count gather into rank-ordered contiguous output on root.
  /// kAuto runs a binomial tree (log2(p) rounds; subtree payloads merge on
  /// the way up instead of p-1 rank-ordered receives funnelling into the
  /// root); kLinear forces the old root loop.
  template <class T>
  void gather(std::span<const T> mine, std::vector<T>& all, int root,
              CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    algo = resolve_gather(algo);
    obs::Span span = coll_span("gather", mine.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    const std::uint64_t seq = next_seq();
    const int p = size();
    const std::size_t cnt = mine.size();
    if (algo == CollectiveAlgo::kLinear) {
      if (rank_ == root) {
        all.assign(cnt * static_cast<std::size_t>(p), T{});
        for (int r = 0; r < p; ++r) {
          std::span<T> slot(all.data() + cnt * static_cast<std::size_t>(r),
                            cnt);
          if (r == rank_) {
            std::copy(mine.begin(), mine.end(), slot.begin());
          } else {
            coll_recv_exact(std::as_writable_bytes(slot), r, coll_tag(seq, 0));
          }
        }
      } else {
        coll_send(std::as_bytes(mine), root, coll_tag(seq, 0));
      }
      return;
    }
    // Binomial tree over virtual ranks (vrank 0 = root). Each rank
    // accumulates its subtree's blocks contiguously in vrank order, then
    // ships the whole thing to its parent in one message.
    const int vrank = (rank_ - root + p) % p;
    std::vector<T> buf(mine.begin(), mine.end());
    for (int mask = 1; mask < p; mask <<= 1) {
      if (vrank & mask) {
        // All lower bits are zero here, so vrank - mask is the parent.
        coll_send(std::as_bytes(std::span<const T>(buf)),
                  (vrank - mask + root) % p, coll_tag(seq, phase_of(mask)));
        break;
      }
      const int child_v = vrank + mask;
      if (child_v < p) {
        const int child_blocks = std::min(mask, p - child_v);
        const std::size_t old = buf.size();
        buf.resize(old + static_cast<std::size_t>(child_blocks) * cnt);
        coll_recv_exact(
            std::as_writable_bytes(std::span<T>(buf).subspan(old)),
            (child_v + root) % p, coll_tag(seq, phase_of(mask)));
        note_phase_bytes(buf.size() * sizeof(T) - old * sizeof(T));
      }
    }
    if (rank_ == root) {
      // buf holds blocks for vranks 0..p-1; rotate back to real-rank order.
      all.assign(cnt * static_cast<std::size_t>(p), T{});
      for (int v = 0; v < p; ++v) {
        const int r = (v + root) % p;
        std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(v) * cnt),
                    cnt,
                    all.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(r) * cnt));
      }
    }
  }

  /// Variable-count gather; returns per-rank chunks on root (empty vector on
  /// non-roots).
  template <class T>
  std::vector<std::vector<T>> gatherv(std::span<const T> mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span =
        coll_span("gatherv", mine.size_bytes(), CollectiveAlgo::kLinear);
    CollectiveDeadline deadline_guard(*this);
    note_algo(CollectiveAlgo::kLinear);
    const std::uint64_t seq = next_seq();
    std::vector<std::vector<T>> chunks;
    if (rank_ == root) {
      chunks.resize(static_cast<std::size_t>(size()));
      for (int r = 0; r < size(); ++r) {
        if (r == rank_) {
          chunks[static_cast<std::size_t>(r)].assign(mine.begin(), mine.end());
        } else {
          chunks[static_cast<std::size_t>(r)] =
              coll_recv_variable<T>(r, coll_tag(seq, 0));
        }
      }
    } else {
      coll_send(std::as_bytes(mine), root, coll_tag(seq, 0));
    }
    return chunks;
  }

  /// Every rank gets the rank-ordered concatenation. kAuto picks Bruck's
  /// log-round schedule below CollectivePolicy::allgather_long_bytes and
  /// the bandwidth-optimal ring at or above it; kLinear forces the old
  /// gather-to-0 + broadcast reference. Counts must match on every rank.
  template <class T>
  std::vector<T> allgather(std::span<const T> mine,
                           CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    algo = resolve_allgather(mine.size_bytes(), algo);
    obs::Span span = coll_span("allgather", mine.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    if (algo == CollectiveAlgo::kLinear) {
      std::vector<T> all;
      gather(mine, all, 0, CollectiveAlgo::kLinear);
      std::uint64_t total = all.size();
      total = broadcast_value(total, 0, CollectiveAlgo::kLinear);
      all.resize(total);
      broadcast(std::span<T>(all), 0, CollectiveAlgo::kLinear);
      return all;
    }
    const int p = size();
    const std::size_t cnt = mine.size();
    std::vector<T> all(cnt * static_cast<std::size_t>(p));
    const std::uint64_t seq = next_seq();
    auto block = [&](std::vector<T>& v, int b) {
      return std::span<T>(v).subspan(static_cast<std::size_t>(b) * cnt, cnt);
    };
    if (p == 1) {
      std::copy(mine.begin(), mine.end(), all.begin());
      return all;
    }
    if (algo == CollectiveAlgo::kRing) {
      // p-1 neighbour rounds; every rank relays the block it received in
      // the previous round, so no rank ever handles more than its share.
      std::copy(mine.begin(), mine.end(), block(all, rank_).begin());
      const int right = (rank_ + 1) % p;
      const int left = (rank_ - 1 + p) % p;
      for (int step = 0; step < p - 1; ++step) {
        const int sblk = (rank_ - step + p) % p;
        const int rblk = (rank_ - step - 1 + p) % p;
        coll_send(std::as_bytes(std::span<const T>(block(all, sblk))), right,
                  coll_tag(seq, step));
        coll_recv_exact(std::as_writable_bytes(block(all, rblk)), left,
                        coll_tag(seq, step));
        note_phase_bytes(cnt * sizeof(T));
      }
      return all;
    }
    // Bruck: ceil(log2 p) doubling rounds over a rotated buffer, then one
    // local unrotation. Round k ships min(2^k, p - 2^k) blocks.
    std::vector<T> tmp(cnt * static_cast<std::size_t>(p));
    std::copy(mine.begin(), mine.end(), tmp.begin());
    int held = 1;
    int phase = 0;
    while (held < p) {
      const int blocks = std::min(held, p - held);
      const int dst = (rank_ - held + p) % p;
      const int src = (rank_ + held) % p;
      const std::size_t nelems = static_cast<std::size_t>(blocks) * cnt;
      coll_send(std::as_bytes(std::span<const T>(tmp.data(), nelems)), dst,
                coll_tag(seq, phase));
      coll_recv_exact(
          std::as_writable_bytes(std::span<T>(
              tmp.data() + static_cast<std::size_t>(held) * cnt, nelems)),
          src, coll_tag(seq, phase));
      note_phase_bytes(nelems * sizeof(T));
      held += blocks;
      ++phase;
    }
    // tmp block j holds rank (rank_ + j) % p's contribution.
    for (int j = 0; j < p; ++j) {
      const int r = (rank_ + j) % p;
      std::copy(block(tmp, j).begin(), block(tmp, j).end(),
                block(all, r).begin());
    }
    return all;
  }

  template <class T>
  std::vector<T> allgather_value(const T& value,
                                 CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    return allgather(std::span<const T>(&value, 1), algo);
  }

  /// Variable-count allgather; every rank gets all per-rank chunks. One
  /// fixed-size round of counts (Bruck under kAuto) followed by a ring of
  /// the variable chunks — the pre-PR root round-trips (gather + two
  /// broadcasts for counts, gatherv + broadcast for payload) are gone.
  template <class T>
  std::vector<std::vector<T>> allgatherv(
      std::span<const T> mine, CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    const bool linear = algo == CollectiveAlgo::kLinear ||
                        (algo == CollectiveAlgo::kAuto &&
                         ctx_->config().coll.allgather ==
                             CollectiveAlgo::kLinear);
    obs::Span span = coll_span(
        "allgatherv", mine.size_bytes(),
        linear ? CollectiveAlgo::kLinear : CollectiveAlgo::kRing);
    CollectiveDeadline deadline_guard(*this);
    note_algo(linear ? CollectiveAlgo::kLinear : CollectiveAlgo::kRing);
    if (linear) {
      auto counts =
          allgather_value<std::uint64_t>(mine.size(), CollectiveAlgo::kLinear);
      std::vector<T> flat = allgather_concat(mine, counts);
      std::vector<std::vector<T>> chunks(counts.size());
      std::size_t off = 0;
      for (std::size_t r = 0; r < counts.size(); ++r) {
        chunks[r].assign(
            flat.begin() + static_cast<std::ptrdiff_t>(off),
            flat.begin() + static_cast<std::ptrdiff_t>(off + counts[r]));
        off += counts[r];
      }
      return chunks;
    }
    const int p = size();
    auto counts = allgather_value<std::uint64_t>(mine.size());
    std::vector<std::vector<T>> chunks(static_cast<std::size_t>(p));
    chunks[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
    if (p == 1) return chunks;
    const std::uint64_t seq = next_seq();
    const int right = (rank_ + 1) % p;
    const int left = (rank_ - 1 + p) % p;
    for (int step = 0; step < p - 1; ++step) {
      const int sblk = (rank_ - step + p) % p;
      const int rblk = (rank_ - step - 1 + p) % p;
      auto& incoming = chunks[static_cast<std::size_t>(rblk)];
      coll_send(std::as_bytes(std::span<const T>(
                    chunks[static_cast<std::size_t>(sblk)])),
                right, coll_tag(seq, step));
      incoming.resize(counts[static_cast<std::size_t>(rblk)]);
      coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)), left,
                      coll_tag(seq, step));
      note_phase_bytes(chunks[static_cast<std::size_t>(sblk)].size() *
                       sizeof(T));
    }
    return chunks;
  }

  /// Equal-count scatter from root's rank-ordered buffer. kAuto runs a
  /// binomial tree: the root hands each child its whole subtree's blocks
  /// in one message and the tree fans them out, log2(p) rounds deep.
  /// kLinear forces the old p-1 sends at the root.
  template <class T>
  void scatter(std::span<const T> all, std::span<T> mine, int root,
               CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    algo = resolve_scatter(algo);
    obs::Span span = coll_span("scatter", mine.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    const std::uint64_t seq = next_seq();
    const int p = size();
    const std::size_t cnt = mine.size();
    if (rank_ == root) {
      require<CommError>(all.size() == cnt * static_cast<std::size_t>(p),
                         "scatter: root buffer size != count * nranks");
    }
    if (algo == CollectiveAlgo::kLinear) {
      if (rank_ == root) {
        for (int r = 0; r < p; ++r) {
          std::span<const T> slot(all.data() + cnt * static_cast<std::size_t>(r),
                                  cnt);
          if (r == rank_) {
            std::copy(slot.begin(), slot.end(), mine.begin());
          } else {
            coll_send(std::as_bytes(slot), r, coll_tag(seq, 0));
          }
        }
      } else {
        coll_recv_exact(std::as_writable_bytes(mine), root, coll_tag(seq, 0));
      }
      return;
    }
    // Binomial tree over virtual ranks (vrank 0 = root). `buf` holds this
    // rank's subtree blocks in vrank order, my own block first.
    const int vrank = (rank_ - root + p) % p;
    std::vector<T> buf;
    int subtree;  // blocks under (and including) this vrank
    if (vrank == 0) {
      subtree = p;
      buf.resize(cnt * static_cast<std::size_t>(p));
      for (int v = 0; v < p; ++v) {
        const int r = (v + root) % p;
        std::copy_n(all.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(r) * cnt),
                    cnt,
                    buf.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(v) * cnt));
      }
    } else {
      const int lowbit = vrank & (-vrank);
      subtree = std::min(lowbit, p - vrank);
      buf.resize(static_cast<std::size_t>(subtree) * cnt);
      coll_recv_exact(std::as_writable_bytes(std::span<T>(buf)),
                      (vrank - lowbit + root) % p,
                      coll_tag(seq, phase_of(lowbit)));
    }
    // Children sit at vrank + mask for each power of two mask below the
    // subtree span; walk them largest-first so deep subtrees start early.
    int top = 1;
    while (top < p) top <<= 1;
    for (int mask = top >> 1; mask >= 1; mask >>= 1) {
      if (mask >= subtree) continue;
      const int child_v = vrank + mask;  // < p because mask < subtree
      const int child_blocks = std::min(mask, p - child_v);
      coll_send(std::as_bytes(std::span<const T>(buf).subspan(
                    static_cast<std::size_t>(mask) * cnt,
                    static_cast<std::size_t>(child_blocks) * cnt)),
                (child_v + root) % p, coll_tag(seq, phase_of(mask)));
      note_phase_bytes(static_cast<std::size_t>(child_blocks) * cnt *
                       sizeof(T));
    }
    std::copy_n(buf.begin(), cnt, mine.begin());
  }

  /// Variable-count scatter; `parts` is consulted only on root.
  template <class T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& parts, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("scatterv", 0, CollectiveAlgo::kLinear);
    CollectiveDeadline deadline_guard(*this);
    note_algo(CollectiveAlgo::kLinear);
    const std::uint64_t seq = next_seq();
    if (rank_ == root) {
      require<CommError>(parts.size() == static_cast<std::size_t>(size()),
                         "scatterv: need one part per rank on root");
      for (int r = 0; r < size(); ++r) {
        if (r == rank_) continue;
        coll_send(std::as_bytes(std::span<const T>(parts[static_cast<std::size_t>(r)])),
                  r, coll_tag(seq, 0));
      }
      return parts[static_cast<std::size_t>(rank_)];
    }
    return coll_recv_variable<T>(root, coll_tag(seq, 0));
  }

  /// Equal-count personalized all-to-all: sendbuf holds `count` elements per
  /// destination rank in rank order; recvbuf likewise per source.
  template <class T>
  void alltoall(std::span<const T> sendbuf, std::span<T> recvbuf,
                CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    require<CommError>(sendbuf.size() == recvbuf.size() &&
                           sendbuf.size() % static_cast<std::size_t>(p) == 0,
                       "alltoall: buffer sizes must be equal multiples of "
                       "the rank count");
    const std::size_t count = sendbuf.size() / static_cast<std::size_t>(p);
    algo = resolve_alltoall(algo);
    obs::Span span = coll_span("alltoall", sendbuf.size_bytes(), algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    const std::uint64_t seq = next_seq();
    auto sendblk = [&](int r) {
      return std::span<const T>(
          sendbuf.data() + count * static_cast<std::size_t>(r), count);
    };
    auto recvblk = [&](int r) {
      return std::span<T>(recvbuf.data() + count * static_cast<std::size_t>(r),
                          count);
    };
    std::copy(sendblk(rank_).begin(), sendblk(rank_).end(),
              recvblk(rank_).begin());
    if (algo == CollectiveAlgo::kLinear) {
      for (int r = 0; r < p; ++r) {
        if (r != rank_) coll_send(std::as_bytes(sendblk(r)), r, coll_tag(seq, 0));
      }
      for (int r = 0; r < p; ++r) {
        if (r != rank_) {
          coll_recv_exact(std::as_writable_bytes(recvblk(r)), r,
                          coll_tag(seq, 0));
        }
      }
      return;
    }
    // Pairwise exchange: p-1 balanced rounds; at step k every rank talks
    // to exactly one partner in each direction instead of the rank-ordered
    // receive ladder that serialized on low ranks.
    for (int step = 1; step < p; ++step) {
      const int dst = (rank_ + step) % p;
      const int src = (rank_ - step + p) % p;
      coll_send(std::as_bytes(sendblk(dst)), dst, coll_tag(seq, step - 1));
      coll_recv_exact(std::as_writable_bytes(recvblk(src)), src,
                      coll_tag(seq, step - 1));
      note_phase_bytes(count * sizeof(T));
    }
  }

  /// Variable-count personalized all-to-all — the shuffle primitive under
  /// ODIN's map-reduce and redistribution. sendparts[r] goes to rank r; the
  /// return value's element [r] came from rank r.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sendparts,
      CollectiveAlgo algo = CollectiveAlgo::kAuto) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    require<CommError>(sendparts.size() == static_cast<std::size_t>(p),
                       "alltoallv: need one part per destination rank");
    std::size_t send_bytes = 0;
    for (const auto& part : sendparts) send_bytes += part.size() * sizeof(T);
    algo = resolve_alltoall(algo);
    obs::Span span = coll_span("alltoallv", send_bytes, algo);
    CollectiveDeadline deadline_guard(*this);
    note_algo(algo);
    const std::uint64_t seq = next_seq();
    std::vector<std::vector<T>> recvparts(static_cast<std::size_t>(p));
    recvparts[static_cast<std::size_t>(rank_)] =
        sendparts[static_cast<std::size_t>(rank_)];
    if (algo == CollectiveAlgo::kLinear) {
      for (int r = 0; r < p; ++r) {
        if (r == rank_) continue;
        coll_send(std::as_bytes(std::span<const T>(
                      sendparts[static_cast<std::size_t>(r)])),
                  r, coll_tag(seq, 0));
      }
      for (int r = 0; r < p; ++r) {
        if (r == rank_) continue;
        recvparts[static_cast<std::size_t>(r)] =
            coll_recv_variable<T>(r, coll_tag(seq, 0));
      }
      return recvparts;
    }
    // Pairwise exchange, same schedule as alltoall but with per-pair
    // variable payloads.
    for (int step = 1; step < p; ++step) {
      const int dst = (rank_ + step) % p;
      const int src = (rank_ - step + p) % p;
      coll_send(std::as_bytes(std::span<const T>(
                    sendparts[static_cast<std::size_t>(dst)])),
                dst, coll_tag(seq, step - 1));
      recvparts[static_cast<std::size_t>(src)] =
          coll_recv_variable<T>(src, coll_tag(seq, step - 1));
      note_phase_bytes(sendparts[static_cast<std::size_t>(dst)].size() *
                       sizeof(T));
    }
    return recvparts;
  }

  /// Zero-copy alltoallv: consumes the send parts, moving each one into
  /// its envelope instead of copying — the shuffle primitive's payloads
  /// travel by pointer swap end to end (receivers move them back out via
  /// the take() fast path). Linear schedule only: every part must be moved
  /// before any blocking receive so sends stay non-blocking.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      std::vector<std::vector<T>>&& sendparts) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    require<CommError>(sendparts.size() == static_cast<std::size_t>(p),
                       "alltoallv: need one part per destination rank");
    std::size_t send_bytes = 0;
    for (const auto& part : sendparts) send_bytes += part.size() * sizeof(T);
    obs::Span span = coll_span("alltoallv", send_bytes,
                               CollectiveAlgo::kLinear);
    CollectiveDeadline deadline_guard(*this);
    note_algo(CollectiveAlgo::kLinear);
    const std::uint64_t seq = next_seq();
    std::vector<std::vector<T>> recvparts(static_cast<std::size_t>(p));
    recvparts[static_cast<std::size_t>(rank_)] =
        std::move(sendparts[static_cast<std::size_t>(rank_)]);
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      coll_send_vec(std::move(sendparts[static_cast<std::size_t>(r)]), r,
                    coll_tag(seq, 0));
    }
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      recvparts[static_cast<std::size_t>(r)] =
          coll_recv_variable<T>(r, coll_tag(seq, 0));
    }
    return recvparts;
  }

  /// Splits the communicator by colour; ranks sharing a colour form a child
  /// communicator ordered by (key, parent rank). MPI_Comm_split analogue.
  Communicator split(int color, int key);

  /// Duplicates the communicator (independent collective sequencing).
  Communicator duplicate() { return split(0, rank_); }

  // ---- ULFM-style recovery ----------------------------------------------
  // The forward-progress protocol after a rank death (DESIGN.md §7):
  // detect (PeerKilledError from a collective receive) -> revoke() ->
  // agree() -> shrink() -> redistribute + restore a checkpoint on the
  // survivor communicator (solvers::resilient_solve drives the last step).

  /// Revokes the communicator: every blocked receive/probe throws
  /// RevokedError and future sends/receives on it fail, so all survivors
  /// fall out of interrupted operations and can join agree()/shrink().
  /// Irreversible — continue on the communicator shrink() returns.
  void revoke() { ctx_->revoke(); }
  bool revoked() const { return ctx_->is_revoked(); }

  /// Contribution flag for agree(): "this rank observed a failure that left
  /// no corpse" (a starved receive, a revocation). Lives in the top bit so
  /// it can never collide with a rank bit below size() < 64; callers that
  /// need it must therefore run on fewer than 64 ranks.
  static constexpr std::uint64_t kAgreeFailureFlag = std::uint64_t{1} << 63;

  /// Fault-tolerant agreement on the dead-rank bitmask (bit r = rank r
  /// dead). Every surviving rank must call it once per recovery round;
  /// the result is identical on all of them: the OR of every rank's
  /// `local_dead_mask` plus all ranks that are killed (or already
  /// returned). Works on a revoked communicator and tolerates ranks dying
  /// mid-agreement (they are excused and folded into the result). Bits at
  /// or above size() pass through untouched, so callers can piggyback
  /// flags (kAgreeFailureFlag) on the same round.
  std::uint64_t agree(std::uint64_t local_dead_mask = 0) {
    return ctx_->agree(rank_, local_dead_mask);
  }

  /// Agrees on the dead set and returns a dense re-ranked communicator of
  /// the survivors (MPI_Comm_shrink analogue): survivors keep their
  /// relative order and renumber to [0, n_survivors). The child context is
  /// fresh (not revoked, empty mailboxes) but inherits the parent's
  /// config *including the fault injector*, so chaos schedules keep firing
  /// across shrinks — note that injector rules matching specific ranks
  /// then address the child's renumbered ranks. Throws PeerKilledError if
  /// the lowest survivor dies before publishing the child (call shrink()
  /// again: the next round excludes it).
  Communicator shrink();

 private:
  friend class PendingRecv;

  void check_user_tag(int tag) const {
    require<CommError>(tag >= 0 && tag < kMaxUserTag,
                       util::cat("tag ", tag, " outside user range [0, ",
                                 kMaxUserTag, ")"));
  }
  void check_user_tag_or_any(int tag) const {
    if (tag != kAnyTag) check_user_tag(tag);
  }
  void check_internal_tag(int tag) const {
    require<CommError>(tag >= kInternalP2PBase,
                       util::cat("internal p2p tag ", tag,
                                 " below reserved base ", kInternalP2PBase));
  }
  void check_root(int root) const {
    require<CommError>(root >= 0 && root < size(),
                       "collective root out of range");
  }

  Mailbox::WaitOptions wait_options(
      std::optional<std::chrono::milliseconds> timeout_override =
          std::nullopt) const {
    Mailbox::WaitOptions w;
    w.aborted = &ctx_->abort_flag();
    w.killed = &ctx_->killed_flag(rank_);
    w.revoked = &ctx_->revoked_flag();
    w.timeout = timeout_override.value_or(ctx_->config().recv_timeout);
    return w;
  }

  /// An abort-path CommError may really be the watchdog's verdict; surface
  /// the who-waits-on-whom report as DeadlockError when it is.
  [[noreturn]] void rethrow_refined() const {
    if (ctx_->deadlocked()) throw DeadlockError(ctx_->deadlock_report());
    throw;
  }

  void verify_integrity(const Envelope& env) {
    if (envelope_checksum(env) == env.checksum) return;
    ++stats().corruption_detected;
    throw CommIntegrityError(util::cat(
        "message integrity check failed (source ", env.source, ", tag ",
        env.tag, ", ", env.payload.size(), " bytes): checksum mismatch"));
  }

  Envelope pop(int source, int tag,
               std::optional<std::chrono::milliseconds> timeout_override =
                   std::nullopt) {
    Mailbox::WaitOptions w = wait_options(timeout_override);
    // Same fast peer-death detection as coll_pop: a p2p receive from a
    // specific dead source can never be satisfied (queued matches still
    // deliver first), so fail fast instead of waiting out the watchdog.
    // Split-phase Import waits (halo exchange) ride on this path, so a
    // rank killed mid-exchange surfaces to its peers as PeerKilledError —
    // inside resilient_solve's recovery scope — rather than a deadlock.
    if (source != kAnySource && source != rank_) {
      w.peer_killed = &ctx_->killed_flag(source);
      w.peer_rank = source;
    }
    Envelope env = [&] {
      try {
        return ctx_->mailbox(rank_).pop_matching(source, tag, w);
      } catch (const RecvTimeoutError&) {
        ++stats().timeouts;
        throw;
      } catch (const RankKilledError&) {
        throw;
      } catch (const CommError&) {
        rethrow_refined();
      }
    }();
    verify_integrity(env);
    return env;
  }

  /// The send core every path funnels through: validates the destination
  /// and this rank's liveness, books the *logical* message volume into the
  /// p2p/coll counters (zero-copy and copied sends report the same logical
  /// bytes — `bytes_copied` separately tracks the physical copies), and
  /// hands the envelope to Context::deliver.
  void send_buffer(Buffer payload, int dest, int tag, bool internal) {
    require<CommError>(dest >= 0 && dest < size(),
                       util::cat("send: destination rank ", dest,
                                 " out of range [0, ", size(), ")"));
    // A killed rank discovers its own death the moment it touches the
    // substrate again.
    if (ctx_->is_killed(rank_)) {
      throw RankKilledError("send on a killed rank (fault injection)");
    }
    if (ctx_->is_revoked()) {
      throw RevokedError("send on a revoked communicator");
    }
    auto& s = stats();
    if (internal) {
      ++s.coll_messages_sent;
      s.coll_bytes_sent += payload.size();
    } else {
      ++s.p2p_messages_sent;
      s.p2p_bytes_sent += payload.size();
    }
    if (payload.zero_copy()) {
      ++s.zero_copy_messages;
      s.zero_copy_bytes += payload.size();
    }
    Envelope env;
    env.source = rank_;
    env.tag = tag;
    env.payload = std::move(payload);
    ctx_->deliver(dest, std::move(env));
  }

  /// Eager copying send: the payload is copied out immediately (pooled
  /// arena block when it fits, heap otherwise), so the caller's buffer is
  /// free the moment this returns — sends never block, which the
  /// collectives' deadlock-freedom depends on.
  void send_bytes_internal(std::span<const std::byte> data, int dest, int tag,
                           bool internal) {
    bool pooled = false;
    Buffer payload = Buffer::copy_of(data, &ctx_->arena(), &pooled);
    auto& s = stats();
    s.bytes_copied += data.size();
    if (!data.empty() && data.size() <= ctx_->arena().block_bytes()) {
      if (pooled) {
        ++s.arena_hits;
      } else {
        ++s.arena_misses;
      }
    }
    send_buffer(std::move(payload), dest, tag, internal);
  }

  /// Non-blocking send core: eager copy at or below the threshold (the
  /// returned future is already ready), rendezvous above it (the envelope
  /// aliases `data`; the future completes when every reference — including
  /// fault-injected duplicates — has been released).
  SendFuture isend_bytes(std::span<const std::byte> data, int dest, int tag) {
    if (data.size() <= ctx_->config().eager_threshold) {
      send_bytes_internal(data, dest, tag, /*internal=*/false);
      return SendFuture();
    }
    ++stats().rendezvous;
    auto handoff = std::make_shared<RendezvousState>();
    send_buffer(Buffer::view(data, handoff), dest, tag, /*internal=*/false);
    return SendFuture(std::move(handoff), ctx_, rank_);
  }

  void coll_send(std::span<const std::byte> data, int dest, int tag) {
    send_bytes_internal(data, dest, tag, /*internal=*/true);
  }

  /// Zero-copy collective-internal send: moves an rvalue vector into the
  /// envelope instead of copying it (the moved alltoallv under ODIN's
  /// shuffle and the Import's owned staging buffers use this).
  template <class T>
  void coll_send_vec(std::vector<T>&& data, int dest, int tag) {
    send_buffer(Buffer::adopt(std::move(data)), dest, tag, /*internal=*/true);
  }

  // ---- non-blocking operation state machines -----------------------------
  // Each posted operation is a small state machine advanced by progress();
  // step() returns true when the operation is complete. They use only
  // non-blocking mailbox primitives, so progress() never blocks.

  struct NbOp {
    virtual ~NbOp() = default;
    virtual bool step(Communicator& comm) = 0;
  };

  struct CallbackRecvOp final : NbOp {
    CallbackRecvOp(int source, int tag, RecvCallback cb)
        : source_(source), tag_(tag), cb_(std::move(cb)) {}
    bool step(Communicator& comm) override {
      auto env =
          comm.ctx_->mailbox(comm.rank_).try_pop_matching(source_, tag_);
      if (!env.has_value()) return false;
      comm.verify_integrity(*env);
      auto& s = comm.stats();
      ++s.p2p_messages_received;
      s.p2p_bytes_received += env->payload.size();
      cb_(std::move(*env));
      return true;
    }
    int source_;
    int tag_;
    RecvCallback cb_;
  };

  /// Dissemination barrier, one round per step: at round k, notify rank
  /// (me + 2^k) and wait for rank (me - 2^k). Same deadlock-free structure
  /// as the blocking barrier, but each round's receive is a try_pop so the
  /// whole machine lives inside progress().
  struct IBarrierOp final : NbOp {
    IBarrierOp(Communicator& comm, std::shared_ptr<NbCollState> state)
        : seq_(comm.next_seq()), state_(std::move(state)) {}
    bool step(Communicator& comm) override {
      const int p = comm.size();
      while (round_ < rounds_needed(p)) {
        const int dist = 1 << round_;
        if (!sent_) {
          comm.coll_send({}, (comm.rank_ + dist) % p, comm.coll_tag(seq_, round_));
          sent_ = true;
        }
        const int src = (comm.rank_ - dist % p + p) % p;
        auto env = comm.ctx_->mailbox(comm.rank_).try_pop_matching(
            src, comm.coll_tag(seq_, round_));
        if (!env.has_value()) return false;
        comm.verify_integrity(*env);
        ++comm.stats().coll_messages_received;
        ++round_;
        sent_ = false;
      }
      state_->done.store(true, std::memory_order_release);
      return true;
    }
    static int rounds_needed(int p) {
      int rounds = 0;
      for (int dist = 1; dist < p; dist <<= 1) ++rounds;
      return rounds;
    }
    std::uint64_t seq_;
    std::shared_ptr<NbCollState> state_;
    int round_ = 0;
    bool sent_ = false;
  };

  /// Non-blocking allreduce by recursive doubling, with the same
  /// non-power-of-two fold/fan-back as the blocking path: extra ranks fold
  /// their vector into a pof2 partner up front and receive the result back
  /// at the end.
  template <class T, class Op>
  struct IAllreduceOp final : NbOp {
    IAllreduceOp(Communicator& comm, std::span<const T> in, std::span<T> out,
                 Op op, std::shared_ptr<NbCollState> state)
        : seq_(comm.next_seq()),
          out_(out),
          op_(op),
          state_(std::move(state)) {
      std::copy(in.begin(), in.end(), out_.begin());
      pof2_ = 1;
      while (pof2_ * 2 <= comm.size()) pof2_ *= 2;
      rem_ = comm.size() - pof2_;
    }
    bool step(Communicator& comm) override {
      const int r = comm.rank_;
      // Stage 0 — fold-in: ranks [pof2, p) send to (rank - pof2) and then
      // just wait for the fan-back; their partners fold the contribution.
      if (stage_ == 0) {
        if (r >= pof2_) {
          if (!sent_) {
            comm.coll_send(std::as_bytes(std::span<const T>(out_)), r - pof2_,
                           comm.coll_tag(seq_, 0));
            sent_ = true;
          }
          stage_ = 2;  // skip the core; wait for fan-back
          sent_ = false;
        } else if (r < rem_) {
          if (!try_recv_combine(comm, r + pof2_, comm.coll_tag(seq_, 0))) {
            return false;
          }
          stage_ = 1;
          sent_ = false;
        } else {
          stage_ = 1;
          sent_ = false;
        }
      }
      // Stage 1 — recursive doubling among the pof2 core ranks.
      if (stage_ == 1) {
        while (mask_ < pof2_) {
          const int dst = r ^ mask_;
          const int phase = 1 + phase_of(mask_);
          if (!sent_) {
            comm.coll_send(std::as_bytes(std::span<const T>(out_)), dst,
                           comm.coll_tag(seq_, phase));
            sent_ = true;
          }
          if (!try_recv_combine(comm, dst, comm.coll_tag(seq_, phase))) {
            return false;
          }
          mask_ <<= 1;
          sent_ = false;
        }
        stage_ = 2;
      }
      // Stage 2 — fan-back to/from the folded-in extra ranks.
      if (r < rem_) {
        comm.coll_send(std::as_bytes(std::span<const T>(out_)), r + pof2_,
                       comm.coll_tag(seq_, 1 + phase_of(pof2_)));
      } else if (r >= pof2_) {
        auto env = comm.ctx_->mailbox(comm.rank_).try_pop_matching(
            r - pof2_, comm.coll_tag(seq_, 1 + phase_of(pof2_)));
        if (!env.has_value()) return false;
        comm.verify_integrity(*env);
        auto& s = comm.stats();
        ++s.coll_messages_received;
        s.coll_bytes_received += env->payload.size();
        require<CommError>(env->payload.size() == out_.size() * sizeof(T),
                           "iallreduce: unexpected message size");
        if (!env->payload.empty()) {
          std::memcpy(out_.data(), env->payload.data(), env->payload.size());
        }
      }
      state_->done.store(true, std::memory_order_release);
      return true;
    }

   private:
    bool try_recv_combine(Communicator& comm, int src, int tag) {
      auto env = comm.ctx_->mailbox(comm.rank_).try_pop_matching(src, tag);
      if (!env.has_value()) return false;
      comm.verify_integrity(*env);
      auto& s = comm.stats();
      ++s.coll_messages_received;
      s.coll_bytes_received += env->payload.size();
      require<CommError>(env->payload.size() == out_.size() * sizeof(T),
                         "iallreduce: unexpected message size");
      std::vector<T> incoming(out_.size());
      if (!env->payload.empty()) {
        std::memcpy(incoming.data(), env->payload.data(),
                    env->payload.size());
      }
      combine(out_, std::span<const T>(incoming), op_);
      return true;
    }

    std::uint64_t seq_;
    std::span<T> out_;
    Op op_;
    std::shared_ptr<NbCollState> state_;
    int pof2_ = 1;
    int rem_ = 0;
    int stage_ = 0;
    int mask_ = 1;
    bool sent_ = false;
  };

  /// Failure poll for the non-blocking paths: progress() and
  /// CollFuture::wait() call it so a fault-injected death, revocation, or
  /// world abort surfaces as the matching error instead of silent stalls.
  void poll_async_failures() {
    if (ctx_->is_killed(rank_)) {
      throw RankKilledError("progress on a killed rank (fault injection)");
    }
    if (ctx_->is_revoked()) {
      throw RevokedError("progress on a revoked communicator");
    }
    if (ctx_->abort_flag().load(std::memory_order_relaxed)) {
      if (ctx_->deadlocked()) throw DeadlockError(ctx_->deadlock_report());
      throw CommError("progress aborted: another rank failed");
    }
  }

  /// RAII deadline budget for one collective call: the outermost
  /// collective entered on this rank arms a single deadline of
  /// CommConfig::recv_timeout covering *all* of its internal phases
  /// (coll_pop spends the remainder, not a fresh timeout per phase — a
  /// p-phase schedule no longer waits up to ~p x the configured
  /// deadline). Nested collectives (kLinear compositions, allgatherv's
  /// count round) inherit the outer budget.
  class CollectiveDeadline {
   public:
    explicit CollectiveDeadline(Communicator& comm) : comm_(comm) {
      const auto budget = comm_.ctx_->config().recv_timeout;
      if (comm_.coll_deadline_ ==
              std::chrono::steady_clock::time_point{} &&
          budget.count() > 0) {
        comm_.coll_deadline_ = std::chrono::steady_clock::now() + budget;
        owner_ = true;
      }
    }
    ~CollectiveDeadline() {
      if (owner_) comm_.coll_deadline_ = {};
    }
    CollectiveDeadline(const CollectiveDeadline&) = delete;
    CollectiveDeadline& operator=(const CollectiveDeadline&) = delete;

   private:
    Communicator& comm_;
    bool owner_ = false;
  };

  /// Collective-internal receive: spends the shared per-collective
  /// deadline budget and watches the expected sender's killed flag, so a
  /// peer dying mid-collective surfaces as PeerKilledError promptly
  /// instead of hanging until the watchdog aborts the world.
  Envelope coll_pop(int source, int tag) {
    std::optional<std::chrono::milliseconds> budget;
    if (coll_deadline_ != std::chrono::steady_clock::time_point{}) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= coll_deadline_) {
        ++stats().timeouts;
        throw RecvTimeoutError(util::cat(
            "collective exceeded its shared ",
            ctx_->config().recv_timeout.count(),
            " ms deadline (budget spans all phases of one collective)"));
      }
      budget = std::max(std::chrono::duration_cast<std::chrono::milliseconds>(
                            coll_deadline_ - now),
                        std::chrono::milliseconds(1));
    }
    Mailbox::WaitOptions w = wait_options(budget);
    if (source != kAnySource && source != rank_) {
      w.peer_killed = &ctx_->killed_flag(source);
      w.peer_rank = source;
    }
    Envelope env = [&] {
      try {
        return ctx_->mailbox(rank_).pop_matching(source, tag, w);
      } catch (const RecvTimeoutError&) {
        ++stats().timeouts;
        throw;
      } catch (const RankKilledError&) {
        throw;  // own death or PeerKilledError — both propagate unchanged
      } catch (const CommError&) {
        rethrow_refined();
      }
    }();
    verify_integrity(env);
    return env;
  }

  void coll_recv_exact(std::span<std::byte> buf, int source, int tag) {
    Envelope env = coll_pop(source, tag);
    auto& s = stats();
    ++s.coll_messages_received;
    s.coll_bytes_received += env.payload.size();
    require<CommError>(env.payload.size() == buf.size(),
                       "collective recv: unexpected message size");
    // This is the gatherv/coll decode path of the empty-payload audit: an
    // empty contribution (legal in gatherv and the variable collectives)
    // arrives with payload.data() == nullptr, and memcpy with a null
    // source is UB even for size 0.
    if (!env.payload.empty()) {
      std::memcpy(buf.data(), env.payload.data(), env.payload.size());
    }
  }

  void coll_recv_any_size(int source, int tag) {
    Envelope env = coll_pop(source, tag);
    auto& s = stats();
    ++s.coll_messages_received;
    s.coll_bytes_received += env.payload.size();
  }

  template <class T>
  std::vector<T> coll_recv_variable(int source, int tag) {
    Envelope env = coll_pop(source, tag);
    auto& s = stats();
    ++s.coll_messages_received;
    s.coll_bytes_received += env.payload.size();
    return PendingRecv::take<T>(std::move(env));
  }

  // Concatenating allgather used by allgatherv once counts are known.
  template <class T>
  std::vector<T> allgather_concat(std::span<const T> mine,
                                  const std::vector<std::uint64_t>& counts) {
    auto chunks = gatherv(mine, 0);
    std::vector<T> flat;
    if (rank_ == 0) {
      for (const auto& c : chunks) flat.insert(flat.end(), c.begin(), c.end());
    } else {
      std::uint64_t total = 0;
      for (auto c : counts) total += c;
      flat.resize(total);
    }
    broadcast(std::span<T>(flat), 0);
    return flat;
  }

  std::uint64_t next_seq() {
    ++stats().collectives;
    return seq_++;
  }

  /// One trace span per collective entry, tagged with this rank's local
  /// send volume. Returned by value: Span is move-constructed into the
  /// caller's scope via guaranteed copy elision.
  obs::Span coll_span(const char* name, std::size_t bytes) {
    obs::Span span(name, "comm");
    if (span.active()) {
      span.arg("bytes", static_cast<std::int64_t>(bytes));
      span.arg("ranks", static_cast<std::int64_t>(size()));
    }
    return span;
  }

  /// As above, additionally tagged with the schedule that was selected.
  obs::Span coll_span(const char* name, std::size_t bytes,
                      CollectiveAlgo algo) {
    obs::Span span = coll_span(name, bytes);
    if (span.active()) span.arg("algo", collective_algo_name(algo));
    return span;
  }

  static int phase_of(int mask) {
    int phase = 0;
    while (mask > 1) {
      mask >>= 1;
      ++phase;
    }
    return phase;
  }

  /// Phase slots per collective instance. Sized for the multi-phase
  /// schedules: pairwise alltoall and the ring use one phase per round
  /// (p - 1 rounds), Rabenseifner uses 2·log2(p) + 2. A phase beyond the
  /// slot count wraps; that is safe because within one collective a
  /// wrapped tag only ever re-pairs the same (source, dest) edge, where
  /// FIFO non-overtaking keeps messages ordered.
  static constexpr int kCollPhases = 256;

  int coll_tag(std::uint64_t seq, int phase) const {
    constexpr std::uint64_t kSlots =
        static_cast<std::uint64_t>(kCollTagSpan) / kCollPhases;
    return kMaxUserTag +
           static_cast<int>((seq % kSlots) * kCollPhases +
                            static_cast<std::uint64_t>(phase % kCollPhases));
  }

  // ---- collective algorithm machinery -----------------------------------

  /// Element-wise fold of `incoming` into `acc`.
  template <class T, class Op>
  static void combine(std::span<T> acc, std::span<const T> incoming, Op op) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] = op(acc[i], incoming[i]);
    }
  }

  /// Bumps the per-rank selection counter for the schedule that ran.
  void note_algo(CollectiveAlgo algo) {
    auto& s = stats();
    switch (algo) {
      case CollectiveAlgo::kLinear: ++s.algo_linear; break;
      case CollectiveAlgo::kRecursiveDoubling: ++s.algo_recursive_doubling; break;
      case CollectiveAlgo::kRabenseifner: ++s.algo_rabenseifner; break;
      case CollectiveAlgo::kRing: ++s.algo_ring; break;
      case CollectiveAlgo::kBruck: ++s.algo_bruck; break;
      case CollectiveAlgo::kBinomial: ++s.algo_binomial; break;
      case CollectiveAlgo::kPairwise: ++s.algo_pairwise; break;
      case CollectiveAlgo::kAuto: break;  // resolved before this point
    }
  }

  /// Per-phase send volume, visible as a counter track in the trace.
  void note_phase_bytes(std::size_t bytes) {
    obs::counter("comm.coll_phase_bytes", "comm", static_cast<double>(bytes));
  }

  CollectiveAlgo resolve_allreduce(std::size_t bytes,
                                   CollectiveAlgo call) const {
    CollectiveAlgo a = call != CollectiveAlgo::kAuto
                           ? call
                           : ctx_->config().coll.allreduce;
    if (a == CollectiveAlgo::kAuto) {
      a = bytes >= ctx_->config().coll.allreduce_long_bytes
              ? CollectiveAlgo::kRabenseifner
              : CollectiveAlgo::kRecursiveDoubling;
    }
    require<CommError>(a == CollectiveAlgo::kLinear ||
                           a == CollectiveAlgo::kRecursiveDoubling ||
                           a == CollectiveAlgo::kRabenseifner,
                       "allreduce: unsupported algorithm");
    return a;
  }

  CollectiveAlgo resolve_allgather(std::size_t bytes,
                                   CollectiveAlgo call) const {
    CollectiveAlgo a = call != CollectiveAlgo::kAuto
                           ? call
                           : ctx_->config().coll.allgather;
    if (a == CollectiveAlgo::kAuto) {
      a = bytes >= ctx_->config().coll.allgather_long_bytes
              ? CollectiveAlgo::kRing
              : CollectiveAlgo::kBruck;
    }
    require<CommError>(a == CollectiveAlgo::kLinear ||
                           a == CollectiveAlgo::kBruck ||
                           a == CollectiveAlgo::kRing,
                       "allgather: unsupported algorithm");
    return a;
  }

  // broadcast/reduce: binomial by default, kLinear forces the flat
  // root-funneled loop. No policy field — per-call override only.
  CollectiveAlgo resolve_rooted(CollectiveAlgo call, const char* what) const {
    CollectiveAlgo a =
        call == CollectiveAlgo::kAuto ? CollectiveAlgo::kBinomial : call;
    require<CommError>(
        a == CollectiveAlgo::kLinear || a == CollectiveAlgo::kBinomial,
        util::cat(what, ": unsupported algorithm"));
    return a;
  }

  CollectiveAlgo resolve_gather(CollectiveAlgo call) const {
    CollectiveAlgo a =
        call != CollectiveAlgo::kAuto ? call : ctx_->config().coll.gather;
    if (a == CollectiveAlgo::kAuto) a = CollectiveAlgo::kBinomial;
    require<CommError>(
        a == CollectiveAlgo::kLinear || a == CollectiveAlgo::kBinomial,
        "gather/scatter: unsupported algorithm");
    return a;
  }

  CollectiveAlgo resolve_scatter(CollectiveAlgo call) const {
    CollectiveAlgo a =
        call != CollectiveAlgo::kAuto ? call : ctx_->config().coll.scatter;
    if (a == CollectiveAlgo::kAuto) a = CollectiveAlgo::kBinomial;
    require<CommError>(
        a == CollectiveAlgo::kLinear || a == CollectiveAlgo::kBinomial,
        "gather/scatter: unsupported algorithm");
    return a;
  }

  CollectiveAlgo resolve_alltoall(CollectiveAlgo call) const {
    CollectiveAlgo a =
        call != CollectiveAlgo::kAuto ? call : ctx_->config().coll.alltoall;
    if (a == CollectiveAlgo::kAuto) a = CollectiveAlgo::kPairwise;
    require<CommError>(
        a == CollectiveAlgo::kLinear || a == CollectiveAlgo::kPairwise,
        "alltoall: unsupported algorithm");
    return a;
  }

  /// Rabenseifner core among the pof2 surviving ranks: recursive-halving
  /// reduce-scatter, then recursive-doubling allgather over the same chunk
  /// layout. `buf` is this rank's working vector and receives the result.
  template <class T, class Op, class RealOf>
  void rabenseifner_core(std::span<T> buf, Op op, std::uint64_t seq, int pof2,
                         int newrank, RealOf real_of) {
    const std::size_t n = buf.size();
    // pof2 nearly-equal contiguous chunks (first n % pof2 get one extra).
    std::vector<std::size_t> disp(static_cast<std::size_t>(pof2) + 1, 0);
    const std::size_t base = n / static_cast<std::size_t>(pof2);
    const std::size_t extra = n % static_cast<std::size_t>(pof2);
    for (int c = 0; c < pof2; ++c) {
      disp[static_cast<std::size_t>(c) + 1] =
          disp[static_cast<std::size_t>(c)] + base +
          (static_cast<std::size_t>(c) < extra ? 1 : 0);
    }
    auto range = [&](int a, int b) {
      return buf.subspan(disp[static_cast<std::size_t>(a)],
                         disp[static_cast<std::size_t>(b)] -
                             disp[static_cast<std::size_t>(a)]);
    };
    std::vector<T> incoming;
    int phase = 1;
    // Reduce-scatter by recursive halving over the chunk range [lo, hi):
    // each round trades away the half not containing chunk `newrank`.
    int lo = 0, hi = pof2;
    for (int mask = pof2 / 2; mask > 0; mask >>= 1, ++phase) {
      const int dst = real_of(newrank ^ mask);
      const int mid = lo + (hi - lo) / 2;
      const bool keep_low = (newrank & mask) == 0;
      const int slo = keep_low ? mid : lo;
      const int shi = keep_low ? hi : mid;
      const int rlo = keep_low ? lo : mid;
      const int rhi = keep_low ? mid : hi;
      coll_send(std::as_bytes(std::span<const T>(range(slo, shi))), dst,
                coll_tag(seq, phase));
      incoming.resize(range(rlo, rhi).size());
      coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)), dst,
                      coll_tag(seq, phase));
      note_phase_bytes(range(slo, shi).size_bytes());
      combine(range(rlo, rhi), std::span<const T>(incoming), op);
      lo = rlo;
      hi = rhi;
    }
    // This rank now owns the fully reduced chunk `newrank` (== lo).
    // Allgather by recursive doubling over aligned chunk blocks.
    for (int mask = 1; mask < pof2; mask <<= 1, ++phase) {
      const int newdst = newrank ^ mask;
      const int dst = real_of(newdst);
      const int mylo = newrank & ~(mask - 1);
      const int peerlo = newdst & ~(mask - 1);
      coll_send(std::as_bytes(std::span<const T>(range(mylo, mylo + mask))),
                dst, coll_tag(seq, phase));
      coll_recv_exact(std::as_writable_bytes(range(peerlo, peerlo + mask)),
                      dst, coll_tag(seq, phase));
      note_phase_bytes(range(mylo, mylo + mask).size_bytes());
    }
  }

  std::shared_ptr<Context> ctx_;
  int rank_;
  std::uint64_t seq_ = 0;
  /// Deadline shared by every phase of the collective currently in flight
  /// on this rank; the epoch value means "no collective deadline armed".
  std::chrono::steady_clock::time_point coll_deadline_{};
  /// Posted non-blocking operations (callback receives, ibarrier,
  /// iallreduce), advanced by progress(). Rank-local: each rank drives its
  /// own list from its own thread.
  std::vector<std::unique_ptr<NbOp>> posted_;

  friend class CollFuture;
};

/// Drives progress() until the collective completes; bounded by the
/// configured receive deadline (zero = wait forever), with the same
/// failure refinement as the blocking collectives.
inline void CollFuture::wait() {
  if (ready()) return;
  const auto budget = comm_->ctx_->config().recv_timeout;
  const auto deadline = budget.count() > 0
                            ? std::chrono::steady_clock::now() + budget
                            : std::chrono::steady_clock::time_point::max();
  while (!ready()) {
    comm_->progress();
    if (ready()) return;
    if (std::chrono::steady_clock::now() >= deadline) {
      ++comm_->stats().timeouts;
      throw RecvTimeoutError(util::cat(
          "non-blocking collective exceeded its ", budget.count(),
          " ms deadline"));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

inline bool PendingRecv::ready() {
  if (captured_.has_value()) return true;
  auto env = comm_->ctx_->mailbox(comm_->rank_).try_pop_matching(source_, tag_);
  if (!env.has_value()) return false;
  comm_->verify_integrity(*env);
  // The message leaves the mailbox here, so this is where it counts as
  // received — wait() may never run (see the destructor).
  auto& s = comm_->stats();
  ++s.p2p_messages_received;
  s.p2p_bytes_received += env->payload.size();
  captured_ = std::move(*env);
  return true;
}

inline Envelope PendingRecv::wait() {
  require<CommError>(!consumed_, "PendingRecv::wait: already consumed");
  consumed_ = true;
  if (captured_.has_value()) return std::move(*captured_);
  Envelope env = comm_->pop(source_, tag_);
  auto& s = comm_->stats();
  ++s.p2p_messages_received;
  s.p2p_bytes_received += env.payload.size();
  return env;
}

inline PendingRecv::~PendingRecv() {
  if (!captured_.has_value() || consumed_) return;
  // ready() captured a message that was never consumed: put it back at the
  // front of the mailbox (it was the earliest match, so front order is
  // preserved) and back the capture out of the receive stats — the later
  // real receive will count it exactly once.
  auto& s = comm_->stats();
  --s.p2p_messages_received;
  s.p2p_bytes_received -= captured_->payload.size();
  ++s.pending_requeued;
  comm_->ctx_->mailbox(comm_->rank_).requeue(std::move(*captured_));
}

}  // namespace pyhpc::comm
