// Communicator: the per-rank handle to a message-passing world.
//
// Semantics follow MPI (see the LLNL MPI model this substrate reproduces):
//  - two-sided, tag + source matched point-to-point messages;
//  - non-overtaking delivery for a fixed (source, dest) pair;
//  - collectives must be entered by every rank of the communicator in the
//    same program order (they are sequenced with an internal tag space);
//  - sends are always eager/buffered, so a send never deadlocks.
//
// All typed operations require trivially-copyable element types; richer
// payloads (strings, record batches) use the byte/string interfaces or the
// serialization helpers in odin/seamless.
#pragma once

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "comm/context.hpp"
#include "comm/message.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::comm {

class Communicator;

/// Handle to a posted non-blocking receive. Because sends are eager, isend
/// completes immediately and needs no handle; PendingRecv is the one
/// genuinely asynchronous operation.
class PendingRecv {
 public:
  PendingRecv(Communicator* comm, int source, int tag)
      : comm_(comm), source_(source), tag_(tag) {}

  /// Non-blocking: true once the matching message has arrived (and has been
  /// captured into this handle).
  bool ready();

  /// Blocks until the message arrives and returns it. May be called once.
  Envelope wait();

  /// Decodes a waited envelope into typed elements.
  template <class T>
  static std::vector<T> decode(const Envelope& env) {
    static_assert(std::is_trivially_copyable_v<T>);
    require<CommError>(env.payload.size() % sizeof(T) == 0,
                       "PendingRecv::decode: payload size not a multiple of "
                       "element size");
    std::vector<T> out(env.payload.size() / sizeof(T));
    std::memcpy(out.data(), env.payload.data(), env.payload.size());
    return out;
  }

 private:
  Communicator* comm_;
  int source_;
  int tag_;
  std::optional<Envelope> captured_;
  bool consumed_ = false;
};

class Communicator {
 public:
  Communicator(std::shared_ptr<Context> ctx, int rank)
      : ctx_(std::move(ctx)), rank_(rank) {
    require<CommError>(rank_ >= 0 && rank_ < ctx_->size(),
                       "Communicator: rank out of range");
  }

  int rank() const { return rank_; }
  int size() const { return ctx_->size(); }

  CommStats& stats() { return ctx_->stats(rank_); }
  const CommStats& stats() const { return ctx_->stats(rank_); }

  /// Sums every rank's counters (call after the parallel region ends, or
  /// from a barrier-synchronized point).
  CommStats aggregate_stats() const {
    CommStats total;
    for (int r = 0; r < size(); ++r) total += ctx_->stats(r);
    return total;
  }

  // ---- point-to-point: bytes ------------------------------------------

  void send_bytes(std::span<const std::byte> data, int dest, int tag) {
    check_user_tag(tag);
    send_bytes_internal(data, dest, tag, /*internal=*/false);
  }

  /// Blocking receive into a freshly sized vector.
  Status recv_bytes(std::vector<std::byte>& out, int source = kAnySource,
                    int tag = kAnyTag) {
    Envelope env = pop(source, tag);
    Status st{env.source, env.tag, env.payload.size()};
    out = std::move(env.payload);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += st.bytes;
    return st;
  }

  /// Blocking probe: metadata of the next matching message. Honours the
  /// CommConfig receive deadline (RecvTimeoutError past it).
  Status probe(int source = kAnySource, int tag = kAnyTag) {
    try {
      return ctx_->mailbox(rank_).probe(source, tag, wait_options());
    } catch (const RecvTimeoutError&) {
      ++stats().timeouts;
      throw;
    } catch (const RankKilledError&) {
      throw;
    } catch (const CommError&) {
      rethrow_refined();
    }
  }

  /// Non-blocking probe.
  std::optional<Status> iprobe(int source = kAnySource, int tag = kAnyTag) {
    return ctx_->mailbox(rank_).try_probe(source, tag);
  }

  // ---- point-to-point: typed ------------------------------------------

  template <class T>
  void send(std::span<const T> data, int dest, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(std::as_bytes(data), dest, tag);
  }

  template <class T>
  void send_value(const T& value, int dest, int tag) {
    send(std::span<const T>(&value, 1), dest, tag);
  }

  /// Strict receive: the incoming message must contain exactly buf.size()
  /// elements; a mismatch is a CommError (catches size bugs early — the
  /// failure-injection tests rely on this).
  template <class T>
  Status recv(std::span<T> buf, int source = kAnySource, int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += env.payload.size();
    require<CommError>(
        env.payload.size() == buf.size_bytes(),
        util::cat("recv: message of ", env.payload.size(),
                  " bytes does not match buffer of ", buf.size_bytes(),
                  " bytes (source ", env.source, ", tag ", env.tag, ")"));
    std::memcpy(buf.data(), env.payload.data(), env.payload.size());
    return Status{env.source, env.tag, env.payload.size()};
  }

  /// Variable-size receive.
  template <class T>
  std::vector<T> recv_vector(int source = kAnySource, int tag = kAnyTag,
                             Status* status_out = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += env.payload.size();
    if (status_out != nullptr) {
      *status_out = Status{env.source, env.tag, env.payload.size()};
    }
    return PendingRecv::decode<T>(env);
  }

  template <class T>
  T recv_value(int source = kAnySource, int tag = kAnyTag) {
    T value{};
    recv(std::span<T>(&value, 1), source, tag);
    return value;
  }

  void send_string(const std::string& text, int dest, int tag) {
    send_bytes(std::as_bytes(std::span<const char>(text.data(), text.size())),
               dest, tag);
  }

  std::string recv_string(int source = kAnySource, int tag = kAnyTag) {
    std::vector<std::byte> raw;
    recv_bytes(raw, source, tag);
    // Empty payloads have a null data() pointer; constructing a string from
    // (nullptr, 0) is UB, so guard that case explicitly.
    if (raw.empty()) return std::string();
    return std::string(reinterpret_cast<const char*>(raw.data()), raw.size());
  }

  // ---- deadline-bounded receives ----------------------------------------
  // Like their unbounded counterparts but with an explicit per-call
  // deadline that overrides CommConfig::recv_timeout; they throw
  // RecvTimeoutError when it expires. The ODIN driver's ack/retry protocol
  // is built on these.

  Status recv_bytes_within(std::chrono::milliseconds timeout,
                           std::vector<std::byte>& out,
                           int source = kAnySource, int tag = kAnyTag) {
    Envelope env = pop(source, tag, timeout);
    Status st{env.source, env.tag, env.payload.size()};
    out = std::move(env.payload);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += st.bytes;
    return st;
  }

  template <class T>
  T recv_value_within(std::chrono::milliseconds timeout,
                      int source = kAnySource, int tag = kAnyTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Envelope env = pop(source, tag, timeout);
    auto& s = stats();
    ++s.p2p_messages_received;
    s.p2p_bytes_received += env.payload.size();
    require<CommError>(
        env.payload.size() == sizeof(T),
        util::cat("recv_value_within: message of ", env.payload.size(),
                  " bytes does not match value of ", sizeof(T), " bytes"));
    T value{};
    std::memcpy(&value, env.payload.data(), sizeof(T));
    return value;
  }

  // ---- failure observability --------------------------------------------

  /// True when fault injection has killed `rank` (drivers use this to turn
  /// a missing ack into WorkerLostError instead of retrying forever).
  bool rank_dead(int rank) const { return ctx_->is_killed(rank); }

  /// Payload bytes currently buffered in this rank's mailbox.
  std::size_t queued_bytes() const {
    return ctx_->mailbox(rank_).queued_bytes();
  }

  // ---- non-blocking -----------------------------------------------------

  /// Eager send: the payload is copied out immediately, so there is nothing
  /// to wait for; provided for symmetry with MPI-style code.
  template <class T>
  void isend(std::span<const T> data, int dest, int tag) {
    send(data, dest, tag);
  }

  /// Posts a receive; completion is observed through the returned handle.
  PendingRecv irecv(int source = kAnySource, int tag = kAnyTag) {
    check_user_tag_or_any(tag);
    return PendingRecv(this, source, tag);
  }

  // ---- collectives ------------------------------------------------------
  // Every collective must be entered by all ranks in the same order.
  // Reduction functors must be associative and commutative.

  void barrier() {
    obs::Span span = coll_span("barrier", 0);
    const std::uint64_t seq = next_seq();
    const int p = size();
    for (int k = 1; k < p; k <<= 1) {
      const int phase = phase_of(k);
      coll_send(std::span<const std::byte>{}, (rank_ + k) % p,
                coll_tag(seq, phase));
      coll_recv_any_size((rank_ - k % p + p) % p, coll_tag(seq, phase));
    }
  }

  /// Binomial-tree broadcast of a fixed-size buffer.
  template <class T>
  void broadcast(std::span<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("broadcast", data.size_bytes());
    const std::uint64_t seq = next_seq();
    const int p = size();
    const int vrank = (rank_ - root + p) % p;
    int mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const int src = (vrank - mask + root) % p;
        coll_recv_exact(std::as_writable_bytes(data), src, coll_tag(seq, 0));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < p) {
        const int dst = (vrank + mask + root) % p;
        coll_send(std::as_bytes(std::span<const T>(data)), dst,
                  coll_tag(seq, 0));
      }
      mask >>= 1;
    }
  }

  template <class T>
  T broadcast_value(T value, int root) {
    broadcast(std::span<T>(&value, 1), root);
    return value;
  }

  /// Broadcast of a variable-length string (length first, then bytes).
  std::string broadcast_string(const std::string& text, int root) {
    std::uint64_t len = text.size();
    len = broadcast_value(len, root);
    std::string out = (rank_ == root) ? text : std::string(len, '\0');
    if (len > 0) broadcast(std::span<char>(out.data(), out.size()), root);
    return out;
  }

  /// Element-wise binomial-tree reduction to `root`. `out` must be sized
  /// like `in` on the root; other ranks may pass an empty span.
  template <class T, class Op>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("reduce", in.size_bytes());
    const std::uint64_t seq = next_seq();
    const int p = size();
    const int vrank = (rank_ - root + p) % p;
    std::vector<T> partial(in.begin(), in.end());
    int mask = 1;
    while (mask < p) {
      if ((vrank & mask) == 0) {
        const int vsrc = vrank | mask;
        if (vsrc < p) {
          const int src = (vsrc + root) % p;
          std::vector<T> incoming(in.size());
          coll_recv_exact(std::as_writable_bytes(std::span<T>(incoming)), src,
                          coll_tag(seq, phase_of(mask)));
          for (std::size_t i = 0; i < partial.size(); ++i) {
            partial[i] = op(partial[i], incoming[i]);
          }
        }
      } else {
        const int dst = ((vrank & ~mask) + root) % p;
        coll_send(std::as_bytes(std::span<const T>(partial)), dst,
                  coll_tag(seq, phase_of(mask)));
        break;
      }
      mask <<= 1;
    }
    if (rank_ == root) {
      require<CommError>(out.size() == in.size(),
                         "reduce: root output span has wrong size");
      std::copy(partial.begin(), partial.end(), out.begin());
    }
  }

  template <class T, class Op>
  T reduce_value(T value, Op op, int root) {
    T out{};
    reduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op, root);
    return out;  // meaningful only on root
  }

  template <class T, class Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op) {
    require<CommError>(out.size() == in.size(),
                       "allreduce: output span has wrong size");
    obs::Span span = coll_span("allreduce", in.size_bytes());
    reduce(in, out, op, 0);
    broadcast(out, 0);
  }

  template <class T, class Op>
  T allreduce_value(T value, Op op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }

  /// Inclusive prefix scan along rank order (chain algorithm).
  template <class T, class Op>
  T scan_inclusive(T value, Op op) {
    obs::Span span = coll_span("scan_inclusive", sizeof(T));
    const std::uint64_t seq = next_seq();
    T acc = value;
    if (rank_ > 0) {
      T prev{};
      coll_recv_exact(
          std::as_writable_bytes(std::span<T>(&prev, 1)), rank_ - 1,
          coll_tag(seq, 0));
      acc = op(prev, value);
    }
    if (rank_ + 1 < size()) {
      coll_send(std::as_bytes(std::span<const T>(&acc, 1)), rank_ + 1,
                coll_tag(seq, 0));
    }
    return acc;
  }

  /// Exclusive prefix scan; rank 0 receives `identity`.
  template <class T, class Op>
  T scan_exclusive(T value, Op op, T identity) {
    obs::Span span = coll_span("scan_exclusive", sizeof(T));
    const T inc = scan_inclusive(value, op);
    // Rotate: every rank wants the inclusive scan of the previous rank.
    const std::uint64_t seq = next_seq();
    if (rank_ + 1 < size()) {
      coll_send(std::as_bytes(std::span<const T>(&inc, 1)), rank_ + 1,
                coll_tag(seq, 0));
    }
    T out = identity;
    if (rank_ > 0) {
      coll_recv_exact(std::as_writable_bytes(std::span<T>(&out, 1)), rank_ - 1,
                      coll_tag(seq, 0));
    }
    return out;
  }

  /// Equal-count gather into rank-ordered contiguous output on root.
  template <class T>
  void gather(std::span<const T> mine, std::vector<T>& all, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("gather", mine.size_bytes());
    const std::uint64_t seq = next_seq();
    if (rank_ == root) {
      all.assign(mine.size() * static_cast<std::size_t>(size()), T{});
      for (int r = 0; r < size(); ++r) {
        std::span<T> slot(all.data() + mine.size() * static_cast<std::size_t>(r),
                          mine.size());
        if (r == rank_) {
          std::copy(mine.begin(), mine.end(), slot.begin());
        } else {
          coll_recv_exact(std::as_writable_bytes(slot), r, coll_tag(seq, 0));
        }
      }
    } else {
      coll_send(std::as_bytes(mine), root, coll_tag(seq, 0));
    }
  }

  /// Variable-count gather; returns per-rank chunks on root (empty vector on
  /// non-roots).
  template <class T>
  std::vector<std::vector<T>> gatherv(std::span<const T> mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("gatherv", mine.size_bytes());
    const std::uint64_t seq = next_seq();
    std::vector<std::vector<T>> chunks;
    if (rank_ == root) {
      chunks.resize(static_cast<std::size_t>(size()));
      for (int r = 0; r < size(); ++r) {
        if (r == rank_) {
          chunks[static_cast<std::size_t>(r)].assign(mine.begin(), mine.end());
        } else {
          chunks[static_cast<std::size_t>(r)] =
              coll_recv_variable<T>(r, coll_tag(seq, 0));
        }
      }
    } else {
      coll_send(std::as_bytes(mine), root, coll_tag(seq, 0));
    }
    return chunks;
  }

  /// Gather + broadcast: every rank gets the rank-ordered concatenation.
  template <class T>
  std::vector<T> allgather(std::span<const T> mine) {
    obs::Span span = coll_span("allgather", mine.size_bytes());
    std::vector<T> all;
    gather(mine, all, 0);
    std::uint64_t total = all.size();
    total = broadcast_value(total, 0);
    all.resize(total);
    broadcast(std::span<T>(all), 0);
    return all;
  }

  template <class T>
  std::vector<T> allgather_value(const T& value) {
    return allgather(std::span<const T>(&value, 1));
  }

  /// Variable-count allgather; every rank gets all per-rank chunks.
  template <class T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    obs::Span span = coll_span("allgatherv", mine.size_bytes());
    auto counts = allgather_value<std::uint64_t>(mine.size());
    std::vector<T> flat = allgather_concat(mine, counts);
    std::vector<std::vector<T>> chunks(counts.size());
    std::size_t off = 0;
    for (std::size_t r = 0; r < counts.size(); ++r) {
      chunks[r].assign(flat.begin() + static_cast<std::ptrdiff_t>(off),
                       flat.begin() + static_cast<std::ptrdiff_t>(off + counts[r]));
      off += counts[r];
    }
    return chunks;
  }

  /// Equal-count scatter from root's rank-ordered buffer.
  template <class T>
  void scatter(std::span<const T> all, std::span<T> mine, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("scatter", mine.size_bytes());
    const std::uint64_t seq = next_seq();
    if (rank_ == root) {
      require<CommError>(all.size() ==
                             mine.size() * static_cast<std::size_t>(size()),
                         "scatter: root buffer size != count * nranks");
      for (int r = 0; r < size(); ++r) {
        std::span<const T> slot(
            all.data() + mine.size() * static_cast<std::size_t>(r),
            mine.size());
        if (r == rank_) {
          std::copy(slot.begin(), slot.end(), mine.begin());
        } else {
          coll_send(std::as_bytes(slot), r, coll_tag(seq, 0));
        }
      }
    } else {
      coll_recv_exact(std::as_writable_bytes(mine), root, coll_tag(seq, 0));
    }
  }

  /// Variable-count scatter; `parts` is consulted only on root.
  template <class T>
  std::vector<T> scatterv(const std::vector<std::vector<T>>& parts, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    check_root(root);
    obs::Span span = coll_span("scatterv", 0);
    const std::uint64_t seq = next_seq();
    if (rank_ == root) {
      require<CommError>(parts.size() == static_cast<std::size_t>(size()),
                         "scatterv: need one part per rank on root");
      for (int r = 0; r < size(); ++r) {
        if (r == rank_) continue;
        coll_send(std::as_bytes(std::span<const T>(parts[static_cast<std::size_t>(r)])),
                  r, coll_tag(seq, 0));
      }
      return parts[static_cast<std::size_t>(rank_)];
    }
    return coll_recv_variable<T>(root, coll_tag(seq, 0));
  }

  /// Equal-count personalized all-to-all: sendbuf holds `count` elements per
  /// destination rank in rank order; recvbuf likewise per source.
  template <class T>
  void alltoall(std::span<const T> sendbuf, std::span<T> recvbuf) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    require<CommError>(sendbuf.size() == recvbuf.size() &&
                           sendbuf.size() % static_cast<std::size_t>(p) == 0,
                       "alltoall: buffer sizes must be equal multiples of "
                       "the rank count");
    const std::size_t count = sendbuf.size() / static_cast<std::size_t>(p);
    obs::Span span = coll_span("alltoall", sendbuf.size_bytes());
    const std::uint64_t seq = next_seq();
    for (int r = 0; r < p; ++r) {
      std::span<const T> slot(sendbuf.data() + count * static_cast<std::size_t>(r),
                              count);
      if (r == rank_) {
        std::copy(slot.begin(), slot.end(),
                  recvbuf.begin() + static_cast<std::ptrdiff_t>(
                                        count * static_cast<std::size_t>(r)));
      } else {
        coll_send(std::as_bytes(slot), r, coll_tag(seq, 0));
      }
    }
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      std::span<T> slot(recvbuf.data() + count * static_cast<std::size_t>(r),
                        count);
      coll_recv_exact(std::as_writable_bytes(slot), r, coll_tag(seq, 0));
    }
  }

  /// Variable-count personalized all-to-all — the shuffle primitive under
  /// ODIN's map-reduce and redistribution. sendparts[r] goes to rank r; the
  /// return value's element [r] came from rank r.
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sendparts) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = size();
    require<CommError>(sendparts.size() == static_cast<std::size_t>(p),
                       "alltoallv: need one part per destination rank");
    std::size_t send_bytes = 0;
    for (const auto& part : sendparts) send_bytes += part.size() * sizeof(T);
    obs::Span span = coll_span("alltoallv", send_bytes);
    const std::uint64_t seq = next_seq();
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      coll_send(std::as_bytes(std::span<const T>(sendparts[static_cast<std::size_t>(r)])),
                r, coll_tag(seq, 0));
    }
    std::vector<std::vector<T>> recvparts(static_cast<std::size_t>(p));
    recvparts[static_cast<std::size_t>(rank_)] =
        sendparts[static_cast<std::size_t>(rank_)];
    for (int r = 0; r < p; ++r) {
      if (r == rank_) continue;
      recvparts[static_cast<std::size_t>(r)] =
          coll_recv_variable<T>(r, coll_tag(seq, 0));
    }
    return recvparts;
  }

  /// Splits the communicator by colour; ranks sharing a colour form a child
  /// communicator ordered by (key, parent rank). MPI_Comm_split analogue.
  Communicator split(int color, int key);

  /// Duplicates the communicator (independent collective sequencing).
  Communicator duplicate() { return split(0, rank_); }

 private:
  friend class PendingRecv;

  void check_user_tag(int tag) const {
    require<CommError>(tag >= 0 && tag < kMaxUserTag,
                       util::cat("tag ", tag, " outside user range [0, ",
                                 kMaxUserTag, ")"));
  }
  void check_user_tag_or_any(int tag) const {
    if (tag != kAnyTag) check_user_tag(tag);
  }
  void check_root(int root) const {
    require<CommError>(root >= 0 && root < size(),
                       "collective root out of range");
  }

  Mailbox::WaitOptions wait_options(
      std::optional<std::chrono::milliseconds> timeout_override =
          std::nullopt) const {
    Mailbox::WaitOptions w;
    w.aborted = &ctx_->abort_flag();
    w.killed = &ctx_->killed_flag(rank_);
    w.timeout = timeout_override.value_or(ctx_->config().recv_timeout);
    return w;
  }

  /// An abort-path CommError may really be the watchdog's verdict; surface
  /// the who-waits-on-whom report as DeadlockError when it is.
  [[noreturn]] void rethrow_refined() const {
    if (ctx_->deadlocked()) throw DeadlockError(ctx_->deadlock_report());
    throw;
  }

  void verify_integrity(const Envelope& env) {
    if (envelope_checksum(env) == env.checksum) return;
    ++stats().corruption_detected;
    throw CommIntegrityError(util::cat(
        "message integrity check failed (source ", env.source, ", tag ",
        env.tag, ", ", env.payload.size(), " bytes): checksum mismatch"));
  }

  Envelope pop(int source, int tag,
               std::optional<std::chrono::milliseconds> timeout_override =
                   std::nullopt) {
    Envelope env = [&] {
      try {
        return ctx_->mailbox(rank_).pop_matching(
            source, tag, wait_options(timeout_override));
      } catch (const RecvTimeoutError&) {
        ++stats().timeouts;
        throw;
      } catch (const RankKilledError&) {
        throw;
      } catch (const CommError&) {
        rethrow_refined();
      }
    }();
    verify_integrity(env);
    return env;
  }

  void send_bytes_internal(std::span<const std::byte> data, int dest, int tag,
                           bool internal) {
    require<CommError>(dest >= 0 && dest < size(),
                       util::cat("send: destination rank ", dest,
                                 " out of range [0, ", size(), ")"));
    // A killed rank discovers its own death the moment it touches the
    // substrate again.
    if (ctx_->is_killed(rank_)) {
      throw RankKilledError("send on a killed rank (fault injection)");
    }
    Envelope env;
    env.source = rank_;
    env.tag = tag;
    env.payload.assign(data.begin(), data.end());
    auto& s = stats();
    if (internal) {
      ++s.coll_messages_sent;
      s.coll_bytes_sent += data.size();
    } else {
      ++s.p2p_messages_sent;
      s.p2p_bytes_sent += data.size();
    }
    ctx_->deliver(dest, std::move(env));
  }

  void coll_send(std::span<const std::byte> data, int dest, int tag) {
    send_bytes_internal(data, dest, tag, /*internal=*/true);
  }

  void coll_recv_exact(std::span<std::byte> buf, int source, int tag) {
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.coll_messages_received;
    s.coll_bytes_received += env.payload.size();
    require<CommError>(env.payload.size() == buf.size(),
                       "collective recv: unexpected message size");
    std::memcpy(buf.data(), env.payload.data(), env.payload.size());
  }

  void coll_recv_any_size(int source, int tag) {
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.coll_messages_received;
    s.coll_bytes_received += env.payload.size();
  }

  template <class T>
  std::vector<T> coll_recv_variable(int source, int tag) {
    Envelope env = pop(source, tag);
    auto& s = stats();
    ++s.coll_messages_received;
    s.coll_bytes_received += env.payload.size();
    return PendingRecv::decode<T>(env);
  }

  // Concatenating allgather used by allgatherv once counts are known.
  template <class T>
  std::vector<T> allgather_concat(std::span<const T> mine,
                                  const std::vector<std::uint64_t>& counts) {
    auto chunks = gatherv(mine, 0);
    std::vector<T> flat;
    if (rank_ == 0) {
      for (const auto& c : chunks) flat.insert(flat.end(), c.begin(), c.end());
    } else {
      std::uint64_t total = 0;
      for (auto c : counts) total += c;
      flat.resize(total);
    }
    broadcast(std::span<T>(flat), 0);
    return flat;
  }

  std::uint64_t next_seq() {
    ++stats().collectives;
    return seq_++;
  }

  /// One trace span per collective entry, tagged with this rank's local
  /// send volume. Returned by value: Span is move-constructed into the
  /// caller's scope via guaranteed copy elision.
  obs::Span coll_span(const char* name, std::size_t bytes) {
    obs::Span span(name, "comm");
    if (span.active()) {
      span.arg("bytes", static_cast<std::int64_t>(bytes));
      span.arg("ranks", static_cast<std::int64_t>(size()));
    }
    return span;
  }

  static int phase_of(int mask) {
    int phase = 0;
    while (mask > 1) {
      mask >>= 1;
      ++phase;
    }
    return phase;
  }

  int coll_tag(std::uint64_t seq, int phase) const {
    // 32 phases per collective instance; sequence wraps far beyond any
    // realistic in-flight window.
    constexpr std::uint64_t kSlots =
        (static_cast<std::uint64_t>(1) << 30) / 32;
    return kMaxUserTag +
           static_cast<int>((seq % kSlots) * 32 + static_cast<std::uint64_t>(phase));
  }

  std::shared_ptr<Context> ctx_;
  int rank_;
  std::uint64_t seq_ = 0;
};

inline bool PendingRecv::ready() {
  if (captured_.has_value()) return true;
  auto env = comm_->ctx_->mailbox(comm_->rank_).try_pop_matching(source_, tag_);
  if (!env.has_value()) return false;
  comm_->verify_integrity(*env);
  captured_ = std::move(*env);
  return true;
}

inline Envelope PendingRecv::wait() {
  require<CommError>(!consumed_, "PendingRecv::wait: already consumed");
  consumed_ = true;
  auto& s = comm_->stats();
  if (captured_.has_value()) {
    ++s.p2p_messages_received;
    s.p2p_bytes_received += captured_->payload.size();
    return std::move(*captured_);
  }
  Envelope env = comm_->pop(source_, tag_);
  ++s.p2p_messages_received;
  s.p2p_bytes_received += env.payload.size();
  return env;
}

}  // namespace pyhpc::comm
