#include "comm/context.hpp"

#include <chrono>
#include <thread>

#include "comm/fault.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::comm {

Context::Context(int nranks, CommConfig config)
    : config_(std::move(config)),
      arena_(config_.arena_block_bytes, config_.arena_max_blocks) {
  require(nranks >= 1, "Context: need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  stats_.resize(static_cast<std::size_t>(nranks));
  killed_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(nranks));
  done_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    killed_[i].store(false, std::memory_order_relaxed);
    done_[i].store(false, std::memory_order_relaxed);
  }
  agree_calls_.assign(static_cast<std::size_t>(nranks), 0);
}

Mailbox& Context::mailbox(int rank) {
  require<CommError>(rank >= 0 && rank < size(),
                     util::cat("Context::mailbox: rank ", rank,
                               " out of range [0, ", size(), ")"));
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

CommStats& Context::stats(int rank) {
  require<CommError>(rank >= 0 && rank < size(),
                     "Context::stats: rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

void Context::deliver(int dest, Envelope env) {
  require<CommError>(dest >= 0 && dest < size(),
                     util::cat("Context::deliver: rank ", dest,
                               " out of range [0, ", size(), ")"));
  // A dead rank sends nothing, and messages to the dead are never read —
  // drop both so the simulated crash does not leak buffered traffic.
  if (is_killed(env.source) || is_killed(dest)) return;

  obs::Span span("deliver", "comm");
  if (span.active()) {
    span.arg("dest", static_cast<std::int64_t>(dest));
    span.arg("tag", static_cast<std::int64_t>(env.tag));
    span.arg("bytes", static_cast<std::int64_t>(env.payload.size()));
  }

  env.checksum = envelope_checksum(env);

  if (FaultInjector* inj = config_.injector.get()) {
    if (auto d = inj->intercept(env.source, dest, env.tag)) {
      // Every fired rule leaves a trace marker so a red chaos run can be
      // reconstructed fault-by-fault (pairs with the faults.seed metric).
      obs::Instant fired("fault.fired", "faults");
      if (fired.active()) {
        fired.arg("kind", fault_kind_name(d->kind));
        fired.arg("src", static_cast<std::int64_t>(env.source));
        fired.arg("dst", static_cast<std::int64_t>(dest));
        fired.arg("tag", static_cast<std::int64_t>(env.tag));
        fired.arg("rule", static_cast<std::int64_t>(d->rule));
        fired.finish();
      }
      switch (d->kind) {
        case FaultKind::kDrop:
          return;
        case FaultKind::kDelay:
          // Sender-side stall: models link backpressure and keeps delivery
          // deterministic (no detached reordering threads).
          std::this_thread::sleep_for(d->delay);
          break;
        case FaultKind::kDuplicate:
          mailboxes_[static_cast<std::size_t>(dest)]->push(env);
          break;
        case FaultKind::kCorrupt:
          // Flip payload bits *after* checksumming so the receiver detects
          // the damage; empty payloads get their checksum flipped instead.
          // Zero-copy payloads share bytes with the sender (and with any
          // duplicate already queued), so tampering must clone first —
          // mutating in place would corrupt live sender data, not just
          // this delivery.
          if (env.payload.empty()) {
            env.checksum = ~env.checksum;
          } else {
            Buffer tampered = Buffer::copy_of(
                std::span<const std::byte>(env.payload.data(),
                                           env.payload.size()));
            tampered.mutable_data()[tampered.size() / 2] ^= std::byte{0xFF};
            env.payload = std::move(tampered);
          }
          break;
        case FaultKind::kKillRank:
          // The crash takes the in-flight message down with it.
          kill_rank(d->victim == kAnyRank ? dest : d->victim);
          return;
      }
    }
  }
  mailboxes_[static_cast<std::size_t>(dest)]->push(std::move(env));
}

void Context::abort() {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& mb : mailboxes_) mb->interrupt();
  children_cv_.notify_all();
  agree_cv_.notify_all();
}

void Context::kill_rank(int rank) {
  require<CommError>(rank >= 0 && rank < size(),
                     "Context::kill_rank: rank out of range");
  killed_[rank].store(true, std::memory_order_release);
  // Wake everyone: the victim observes its own death, and peers blocked in
  // collective-internal receives on the victim detect it promptly instead
  // of waiting out a poll period.
  for (auto& mb : mailboxes_) mb->interrupt();
  agree_cv_.notify_all();
}

void Context::revoke() {
  revoked_.store(true, std::memory_order_release);
  // Wake every blocked receiver so it observes the revocation.
  for (auto& mb : mailboxes_) mb->interrupt();
}

std::uint64_t Context::agree(int rank, std::uint64_t local_mask,
                             std::uint64_t* round_out) {
  require<CommError>(rank >= 0 && rank < size(),
                     "Context::agree: rank out of range");
  require<CommError>(size() <= 64,
                     "Context::agree: dead-set bitmask supports at most 64 "
                     "ranks");
  std::unique_lock<std::mutex> lock(agree_mu_);
  const std::uint64_t round = agree_calls_[static_cast<std::size_t>(rank)]++;
  if (round_out != nullptr) *round_out = round;
  const auto bit = [](int r) { return std::uint64_t{1} << r; };
  for (;;) {
    if (killed_[rank].load(std::memory_order_acquire)) {
      throw RankKilledError("agree on a killed rank (fault injection)");
    }
    if (aborted_.load(std::memory_order_relaxed)) {
      throw CommError("agree aborted: another rank failed");
    }
    const std::uint64_t completed = agree_results_.size();
    if (completed > round) {
      return agree_results_[static_cast<std::size_t>(round)];
    }
    if (completed == round) {
      if ((agree_contributed_ & bit(rank)) == 0) {
        agree_contributed_ |= bit(rank);
        agree_pending_mask_ |= local_mask;
      }
      // The round completes once every rank has contributed or is excused
      // (killed or already returned from its body) — so a rank dying
      // mid-agreement cannot wedge the survivors.
      bool complete = true;
      for (int r = 0; r < size() && complete; ++r) {
        if ((agree_contributed_ & bit(r)) == 0 && !is_killed(r) &&
            !is_done(r)) {
          complete = false;
        }
      }
      if (complete) {
        std::uint64_t result = agree_pending_mask_;
        for (int r = 0; r < size(); ++r) {
          if (is_killed(r) || is_done(r)) result |= bit(r);
        }
        agree_results_.push_back(result);
        agree_pending_mask_ = 0;
        agree_contributed_ = 0;
        agree_cv_.notify_all();
        return result;
      }
    }
    // completed < round: this rank is a full recovery ahead of a laggard;
    // wait for the earlier round to finish first.
    agree_cv_.wait_for(lock, std::chrono::milliseconds(25));
  }
}

bool Context::is_killed(int rank) const {
  if (rank < 0 || rank >= size()) return false;
  return killed_[rank].load(std::memory_order_acquire);
}

const std::atomic<bool>& Context::killed_flag(int rank) const {
  require<CommError>(rank >= 0 && rank < size(),
                     "Context::killed_flag: rank out of range");
  return killed_[rank];
}

void Context::mark_done(int rank) {
  if (rank < 0 || rank >= size()) return;
  done_[rank].store(true, std::memory_order_release);
}

bool Context::is_done(int rank) const {
  if (rank < 0 || rank >= size()) return false;
  return done_[rank].load(std::memory_order_acquire);
}

void Context::fail_deadlock(std::string report) {
  {
    std::lock_guard<std::mutex> lock(deadlock_mu_);
    if (deadlocked_.load(std::memory_order_relaxed)) return;
    deadlock_report_ = std::move(report);
  }
  deadlocked_.store(true, std::memory_order_release);
  abort();
}

std::string Context::deadlock_report() const {
  std::lock_guard<std::mutex> lock(deadlock_mu_);
  return deadlock_report_;
}

void Context::publish_child(std::uint64_t seq, int color,
                            std::shared_ptr<Context> child) {
  {
    std::lock_guard<std::mutex> lock(children_mu_);
    children_[{seq, color}] = std::move(child);
  }
  children_cv_.notify_all();
}

std::shared_ptr<Context> Context::try_get_child(std::uint64_t seq, int color) {
  std::lock_guard<std::mutex> lock(children_mu_);
  auto it = children_.find(std::make_pair(seq, color));
  return it != children_.end() ? it->second : nullptr;
}

std::shared_ptr<Context> Context::wait_child(std::uint64_t seq, int color) {
  std::unique_lock<std::mutex> lock(children_mu_);
  const auto key = std::make_pair(seq, color);
  for (;;) {
    auto it = children_.find(key);
    if (it != children_.end()) return it->second;
    if (aborted_.load(std::memory_order_relaxed)) {
      throw CommError("split aborted: another rank failed");
    }
    children_cv_.wait_for(lock, std::chrono::milliseconds(25));
  }
}

}  // namespace pyhpc::comm
