#include "comm/context.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::comm {

Context::Context(int nranks) {
  require(nranks >= 1, "Context: need at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  stats_.resize(static_cast<std::size_t>(nranks));
}

Mailbox& Context::mailbox(int rank) {
  require<CommError>(rank >= 0 && rank < size(),
                     util::cat("Context::mailbox: rank ", rank,
                               " out of range [0, ", size(), ")"));
  return *mailboxes_[static_cast<std::size_t>(rank)];
}

CommStats& Context::stats(int rank) {
  require<CommError>(rank >= 0 && rank < size(),
                     "Context::stats: rank out of range");
  return stats_[static_cast<std::size_t>(rank)];
}

void Context::abort() {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& mb : mailboxes_) mb->interrupt();
  children_cv_.notify_all();
}

void Context::publish_child(std::uint64_t seq, int color,
                            std::shared_ptr<Context> child) {
  {
    std::lock_guard<std::mutex> lock(children_mu_);
    children_[{seq, color}] = std::move(child);
  }
  children_cv_.notify_all();
}

std::shared_ptr<Context> Context::wait_child(std::uint64_t seq, int color) {
  std::unique_lock<std::mutex> lock(children_mu_);
  const auto key = std::make_pair(seq, color);
  for (;;) {
    auto it = children_.find(key);
    if (it != children_.end()) return it->second;
    if (aborted_.load(std::memory_order_relaxed)) {
      throw CommError("split aborted: another rank failed");
    }
    children_cv_.wait_for(lock, std::chrono::milliseconds(25));
  }
}

}  // namespace pyhpc::comm
