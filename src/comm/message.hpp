// Wire-level message types for the pyhpc in-process message-passing
// substrate. The substrate reproduces MPI's two-sided semantics (tag and
// source matching, non-overtaking delivery per (source, dest) pair) with
// ranks running as threads in one process; see DESIGN.md §2 for why this
// substitution preserves the behaviour the paper depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pyhpc::comm {

/// Matches any source rank in recv/probe.
inline constexpr int kAnySource = -1;
/// Matches any tag in recv/probe.
inline constexpr int kAnyTag = -1;

/// User tags live in [0, kMaxUserTag); larger values are reserved for
/// internal collective traffic.
inline constexpr int kMaxUserTag = 1 << 28;

/// Delivery metadata returned by recv/probe (MPI_Status analogue).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// One in-flight message. Sends are always eager/buffered: the payload is
/// copied into the envelope at send time, so a send never blocks on the
/// receiver (mirrors MPI's eager protocol for small messages and removes
/// send-side deadlock by construction).
struct Envelope {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

}  // namespace pyhpc::comm
