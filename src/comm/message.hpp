// Wire-level message types for the pyhpc in-process message-passing
// substrate. The substrate reproduces MPI's two-sided semantics (tag and
// source matching, non-overtaking delivery per (source, dest) pair) with
// ranks running as threads in one process; see DESIGN.md §2 for why this
// substitution preserves the behaviour the paper depends on.
#pragma once

#include <cstddef>
#include <cstdint>

#include "comm/buffer.hpp"

namespace pyhpc::comm {

/// Matches any source rank in recv/probe.
inline constexpr int kAnySource = -1;
/// Matches any tag in recv/probe.
inline constexpr int kAnyTag = -1;

/// User tags live in [0, kMaxUserTag); larger values are reserved for
/// framework-internal traffic.
inline constexpr int kMaxUserTag = 1 << 28;

/// Layout of the reserved space above kMaxUserTag:
///  - [kMaxUserTag, kMaxUserTag + kCollTagSpan): collective sequencing
///    tags (per-instance sequence number x per-phase slot, see
///    Communicator::coll_tag);
///  - [kInternalP2PBase, ...): framework point-to-point traffic (halo
///    exchanges and similar subsystem protocols) that must never collide
///    with user tags *or* with collective sequencing.
inline constexpr int kCollTagSpan = 1 << 30;
inline constexpr int kInternalP2PBase = kMaxUserTag + kCollTagSpan;

/// Reserved internal tag for ODIN's one-deep halo exchange
/// (odin::shifted_diff / shift).
inline constexpr int kHaloTag = kInternalP2PBase + 0;

/// Reserved internal tag for split-phase tpetra Import/Export payloads
/// (Import::begin_apply / finish). Safe to share across plan instances:
/// applications are collective (same program order on every rank) and
/// per-(source, dest) delivery is FIFO.
inline constexpr int kImportTag = kInternalP2PBase + 1;

/// Reserved internal tags for the ODIN driver/service control plane
/// (odin::DriverContext / odin::ServiceContext). Control payloads and
/// their acks ride two fixed tags; reduce replies are session-tagged —
/// each service session's replies travel on
/// `kDriverReplyBase + session % kDriverReplySpan`, so one session's
/// partials can never be matched by another session's collection loop.
/// (Session ids wrap past the span; dispatch is serialized, so a wrapped
/// id only shares a tag, never interleaves on it.)
inline constexpr int kDriverControlTag = kInternalP2PBase + 2;
inline constexpr int kDriverAckTag = kInternalP2PBase + 3;
inline constexpr int kDriverReplyBase = kInternalP2PBase + 16;
inline constexpr int kDriverReplySpan = 1 << 12;

/// Delivery metadata returned by recv/probe (MPI_Status analogue).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// One in-flight message. Blocking sends are always eager/buffered — the
/// payload lands in transport storage at send time, so a send never blocks
/// on the receiver (mirrors MPI's eager protocol and removes send-side
/// deadlock by construction). "Buffered" no longer implies "copied": the
/// payload is a ref-counted Buffer, so moved (adopt) and rendezvous (view)
/// sends share the sender's bytes instead of duplicating them, and a
/// fault-injected duplicate shares the original's storage.
///
/// `checksum` is stamped by Context::deliver over (source, tag, payload);
/// receivers verify it before decoding so injected (or real) corruption
/// surfaces as CommIntegrityError instead of silently wrong data.
struct Envelope {
  int source = 0;
  int tag = 0;
  std::uint64_t checksum = 0;
  Buffer payload;
};

/// FNV-1a over the delivery-relevant envelope fields. Cheap (one pass over
/// the payload) and good enough to catch injected bit flips; not a
/// cryptographic MAC.
inline std::uint64_t envelope_checksum(const Envelope& env) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(env.source)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(env.tag)));
  mix(env.payload.size());
  const std::byte* p = env.payload.data();
  const std::byte* end = p + env.payload.size();  // p == end when empty
  for (; p != end; ++p) {
    h ^= static_cast<std::uint64_t>(*p);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace pyhpc::comm
