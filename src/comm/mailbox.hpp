// Per-rank inbound message queue with MPI-style matching.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace pyhpc::comm {

/// FIFO queue of envelopes addressed to one rank. Matching scans in arrival
/// order, which yields MPI's non-overtaking guarantee for any fixed
/// (source, tag) pair. Blocking pops poll an abort flag so that one rank
/// failing cannot wedge the others forever.
class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message and wakes any waiting receiver.
  void push(Envelope env);

  /// Blocks until a message matching (source, tag) is available, then
  /// removes and returns it. `source`/`tag` may be kAnySource/kAnyTag.
  /// Throws CommError when `aborted` becomes true while waiting.
  Envelope pop_matching(int source, int tag, const std::atomic<bool>& aborted);

  /// Non-blocking variant: returns nullopt when no match is queued.
  std::optional<Envelope> try_pop_matching(int source, int tag);

  /// Blocks until a match is available and returns its metadata without
  /// dequeuing (MPI_Probe analogue).
  Status probe(int source, int tag, const std::atomic<bool>& aborted);

  /// Non-blocking probe.
  std::optional<Status> try_probe(int source, int tag);

  /// Wakes all waiters (used during abort).
  void interrupt();

  /// Number of queued messages (for tests/instrumentation).
  std::size_t queued() const;

 private:
  static bool matches(const Envelope& env, int source, int tag) {
    return (source == kAnySource || env.source == source) &&
           (tag == kAnyTag || env.tag == tag);
  }

  // Finds the first queued match; caller must hold mu_.
  std::deque<Envelope>::iterator find_locked(int source, int tag);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
};

}  // namespace pyhpc::comm
