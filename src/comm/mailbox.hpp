// Per-rank inbound message queue with MPI-style matching.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "comm/message.hpp"

namespace pyhpc::comm {

/// FIFO queue of envelopes addressed to one rank. Matching scans in arrival
/// order, which yields MPI's non-overtaking guarantee for any fixed
/// (source, tag) pair. Blocking pops poll abort/killed flags so that one
/// rank failing (or being fault-killed) cannot wedge the others forever,
/// and can carry a deadline so a lost message surfaces as RecvTimeoutError
/// instead of a hang.
class Mailbox {
 public:
  /// Flags and deadline a blocking wait observes.
  struct WaitOptions {
    /// World abort flag; waiting throws CommError once it is set.
    const std::atomic<bool>* aborted = nullptr;
    /// The owner rank's own killed flag; waiting throws RankKilledError.
    const std::atomic<bool>* killed = nullptr;
    /// Revocation flag of the communicator (ULFM revoke): checked before
    /// matching, so a revoked communicator delivers nothing — waiting (or
    /// a queued match) surfaces as RevokedError.
    const std::atomic<bool>* revoked = nullptr;
    /// Killed flag of the specific peer this wait expects a message from
    /// (collective-internal receives set it). Checked only when no match
    /// is queued: a message the peer sent before dying is still delivered,
    /// but waiting on a dead peer throws PeerKilledError(peer_rank)
    /// promptly instead of hanging until the deadline or the watchdog.
    const std::atomic<bool>* peer_killed = nullptr;
    int peer_rank = -1;
    /// Zero means wait forever; otherwise RecvTimeoutError past deadline.
    std::chrono::milliseconds timeout{0};
  };

  /// Snapshot of the owner's blocked state, read by the deadlock watchdog.
  /// `epoch` increments whenever the owner enters or leaves a blocking
  /// wait, so two equal non-zero snapshots mean "still stuck in the same
  /// wait".
  struct WaitInfo {
    bool waiting = false;
    int source = 0;
    int tag = 0;
    bool has_deadline = false;
    std::uint64_t epoch = 0;
  };

  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  /// Enqueues a message and wakes any waiting receiver.
  void push(Envelope env);

  /// Puts a message back at the *front* of the queue (used when a
  /// PendingRecv handle dies still owning a captured message). Front
  /// placement restores the arrival order the capture removed it from, so
  /// non-overtaking delivery per (source, dest) is preserved.
  void requeue(Envelope env);

  /// Blocks until a message matching (source, tag) is available, then
  /// removes and returns it. `source`/`tag` may be kAnySource/kAnyTag.
  /// Throws CommError (abort), RankKilledError (owner killed), or
  /// RecvTimeoutError (deadline exceeded) while waiting.
  Envelope pop_matching(int source, int tag, const WaitOptions& opts);

  /// Non-blocking variant: returns nullopt when no match is queued.
  std::optional<Envelope> try_pop_matching(int source, int tag);

  /// Blocks until a match is available and returns its metadata without
  /// dequeuing (MPI_Probe analogue). Same failure modes as pop_matching.
  Status probe(int source, int tag, const WaitOptions& opts);

  /// Non-blocking probe.
  std::optional<Status> try_probe(int source, int tag);

  /// Wakes all waiters (used during abort and rank kill).
  void interrupt();

  /// Number of queued messages (for tests/instrumentation).
  std::size_t queued() const;

  /// Payload bytes currently buffered in the queue — eager sends buffer at
  /// the receiver, so this is the quantity that grows without bound when a
  /// receiver falls behind.
  std::size_t queued_bytes() const;

  /// Largest queued_bytes() ever observed (folded into CommStats).
  std::size_t highwater_bytes() const;

  /// Largest queue depth (message count) ever observed — exported as the
  /// `comm.mailbox_highwater_messages` gauge in the metrics registry.
  std::size_t highwater_messages() const;

  /// What (if anything) the owner is currently blocked on.
  WaitInfo wait_info() const;

 private:
  static bool matches(const Envelope& env, int source, int tag) {
    return (source == kAnySource || env.source == source) &&
           (tag == kAnyTag || env.tag == tag);
  }

  // Finds the first queued match; caller must hold mu_.
  std::deque<Envelope>::iterator find_locked(int source, int tag);

  // Marks the owner blocked for the lifetime of a wait; ctor/dtor run with
  // mu_ held (construct after the unique_lock so unwind order is correct).
  struct WaitScope {
    WaitScope(Mailbox& mb, int source, int tag, bool has_deadline);
    ~WaitScope();
    Mailbox& mb;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t highwater_bytes_ = 0;
  std::size_t highwater_messages_ = 0;
  WaitInfo wait_;  // guarded by mu_
};

}  // namespace pyhpc::comm
