// Preconditioner interface plus the classic Ifpack-style point
// preconditioners: Jacobi (damped), hybrid Gauss-Seidel / SOR / symmetric
// GS, and Chebyshev polynomial smoothing.
//
// Distributed semantics follow Ifpack: relaxation sweeps are processor-local
// (off-rank couplings are frozen at the ghosted values of the previous
// sweep), which keeps each sweep at one halo exchange.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "tpetra/crs_matrix.hpp"
#include "tpetra/operator.hpp"
#include "tpetra/vector.hpp"
#include "util/exec_space.hpp"
#include "util/task_pool.hpp"

namespace pyhpc::precond {

using Matrix = tpetra::CrsMatrix<double>;
using Vector = tpetra::Vector<double>;
using Map = tpetra::Map<>;
using LO = std::int32_t;
using GO = std::int64_t;

/// z := M^{-1} r. Implementations are collective across the matrix's
/// communicator.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const Vector& r, Vector& z) const = 0;
  virtual std::string name() const = 0;
};

/// No-op preconditioner (M = I).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z) const override {
    z.update(1.0, r, 0.0);
  }
  std::string name() const override { return "Identity"; }
};

/// Damped point-Jacobi: `sweeps` iterations of
///   z <- z + omega D^{-1} (r - A z), starting from z = 0.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const Matrix& a, double omega = 1.0,
                                int sweeps = 1)
      : a_(a), omega_(omega), sweeps_(sweeps), inv_diag_(a.row_map()) {
    require(sweeps >= 1, "Jacobi: need at least one sweep");
    Vector diag(a.row_map());
    a.get_local_diag_copy(diag);
    for (LO i = 0; i < diag.local_size(); ++i) {
      require<NumericalError>(diag[i] != 0.0, "Jacobi: zero diagonal entry");
      inv_diag_[i] = 1.0 / diag[i];
    }
  }

  void apply(const Vector& r, Vector& z) const override {
    const double* rv = r.local_view().data();
    const double* dv = inv_diag_.local_view().data();
    double* zv = z.local_view().data();
    const double omega = omega_;
    const auto n = static_cast<std::int64_t>(z.local_size());
    // First sweep from z=0 is just z = omega D^-1 r — no matvec needed.
    // Element bodies over contiguous vector views: the SIMD space
    // vectorizes these relaxation sweeps.
    const auto space = util::exec::default_space();
    util::exec::for_each(space, 0, n, util::kDefaultGrain,
                         [=](std::int64_t i) noexcept { zv[i] = omega * dv[i] * rv[i]; });
    Vector az(a_.range_map());
    for (int s = 1; s < sweeps_; ++s) {
      a_.apply(z, az);
      const double* azv = az.local_view().data();
      util::exec::for_each(space, 0, n, util::kDefaultGrain,
                           [=](std::int64_t i) noexcept {
                             zv[i] += omega * dv[i] * (rv[i] - azv[i]);
                           });
    }
  }

  std::string name() const override { return "Jacobi"; }

 private:
  const Matrix& a_;
  double omega_;
  int sweeps_;
  Vector inv_diag_;
};

/// Hybrid (processor-local) Gauss-Seidel / SOR. direction selects forward,
/// backward, or symmetric sweeps; omega = 1 gives classic GS.
class GaussSeidelPreconditioner final : public Preconditioner {
 public:
  enum class Direction { kForward, kBackward, kSymmetric };

  explicit GaussSeidelPreconditioner(const Matrix& a, double omega = 1.0,
                                     int sweeps = 1,
                                     Direction direction = Direction::kSymmetric)
      : a_(a),
        omega_(omega),
        sweeps_(sweeps),
        direction_(direction),
        ghost_(a.col_map()) {
    require(sweeps >= 1, "GaussSeidel: need at least one sweep");
    require(omega > 0.0 && omega < 2.0,
            "GaussSeidel: omega must lie in (0, 2)");
    // Cache inverse diagonal using column-map local ids for the sweep loop.
    Vector diag(a.row_map());
    a.get_local_diag_copy(diag);
    inv_diag_.resize(static_cast<std::size_t>(a.row_map().num_local()));
    for (LO i = 0; i < diag.local_size(); ++i) {
      require<NumericalError>(diag[i] != 0.0,
                              "GaussSeidel: zero diagonal entry");
      inv_diag_[static_cast<std::size_t>(i)] = 1.0 / diag[i];
    }
  }

  void apply(const Vector& r, Vector& z) const override {
    z.put_scalar(0.0);
    for (int s = 0; s < sweeps_; ++s) {
      if (direction_ != Direction::kBackward) sweep(r, z, /*forward=*/true);
      if (direction_ != Direction::kForward) sweep(r, z, /*forward=*/false);
    }
  }

  std::string name() const override {
    return omega_ == 1.0 ? "GaussSeidel" : "SOR";
  }

 private:
  // One local sweep; ghost entries are refreshed once per sweep (hybrid GS).
  void sweep(const Vector& r, Vector& z, bool forward) const {
    a_.import_to_col_layout(z, ghost_);
    auto gv = ghost_.local_view();
    const LO n = a_.row_map().num_local();
    auto row_ptr = a_.row_ptr();
    auto col_ind = a_.col_ind();
    auto vals = a_.values();
    const LO begin = forward ? 0 : n - 1;
    const LO end = forward ? n : -1;
    const LO step = forward ? 1 : -1;
    for (LO i = begin; i != end; i += step) {
      double acc = r[i];
      for (auto k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const LO c = col_ind[static_cast<std::size_t>(k)];
        if (c == i) continue;
        // Owned columns read the in-sweep value; ghosts the imported copy.
        const double xc = (c < n) ? z[c] : gv[static_cast<std::size_t>(c)];
        acc -= vals[static_cast<std::size_t>(k)] * xc;
      }
      const double zi_new = inv_diag_[static_cast<std::size_t>(i)] * acc;
      z[i] = (1.0 - omega_) * z[i] + omega_ * zi_new;
    }
  }

  const Matrix& a_;
  double omega_;
  int sweeps_;
  Direction direction_;
  std::vector<double> inv_diag_;
  mutable Vector ghost_;
};

/// Chebyshev polynomial preconditioner over the interval
/// [lambda_max / ratio, lambda_max]; lambda_max is estimated with a few
/// power iterations on D^{-1} A when not supplied.
class ChebyshevPreconditioner final : public Preconditioner {
 public:
  explicit ChebyshevPreconditioner(const Matrix& a, int degree = 3,
                                   double eig_ratio = 30.0,
                                   double lambda_max_hint = 0.0)
      : a_(a), degree_(degree), inv_diag_(a.row_map()) {
    require(degree >= 1, "Chebyshev: degree must be >= 1");
    Vector diag(a.row_map());
    a.get_local_diag_copy(diag);
    for (LO i = 0; i < diag.local_size(); ++i) {
      require<NumericalError>(diag[i] != 0.0, "Chebyshev: zero diagonal");
      inv_diag_[i] = 1.0 / diag[i];
    }
    lambda_max_ = lambda_max_hint > 0.0 ? lambda_max_hint
                                        : estimate_lambda_max(10);
    lambda_min_ = lambda_max_ / eig_ratio;
  }

  void apply(const Vector& r, Vector& z) const override {
    // Standard Chebyshev smoothing recurrence on D^{-1}A with z0 = 0.
    const double d = (lambda_max_ + lambda_min_) / 2.0;
    const double c = (lambda_max_ - lambda_min_) / 2.0;
    Vector p(a_.range_map());
    Vector scratch(a_.range_map());
    z.put_scalar(0.0);
    double alpha = 0.0, beta = 0.0;
    const double* rv = r.local_view().data();
    const double* dv = inv_diag_.local_view().data();
    double* sv = scratch.local_view().data();
    const auto n = static_cast<std::int64_t>(scratch.local_size());
    for (int k = 0; k < degree_; ++k) {
      // residual of the preconditioned system: s = D^-1 (r - A z)
      a_.apply(z, scratch);
      util::exec::for_each(util::exec::default_space(), 0, n,
                           util::kDefaultGrain, [=](std::int64_t i) noexcept {
                             sv[i] = dv[i] * (rv[i] - sv[i]);
                           });
      if (k == 0) {
        alpha = 1.0 / d;
        p.update(1.0, scratch, 0.0);
      } else {
        beta = (c * alpha / 2.0) * (c * alpha / 2.0);
        alpha = 1.0 / (d - beta / alpha);
        p.update(1.0, scratch, beta);
      }
      z.update(alpha, p, 1.0);
    }
  }

  double lambda_max() const { return lambda_max_; }
  std::string name() const override { return "Chebyshev"; }

 private:
  double estimate_lambda_max(int iters) const {
    Vector v(a_.range_map());
    v.randomize(12345);
    double lambda = 1.0;
    Vector av(a_.range_map());
    for (int it = 0; it < iters; ++it) {
      const double nrm = v.norm2();
      if (nrm == 0.0) break;
      v.scale(1.0 / nrm);
      a_.apply(v, av);
      for (LO i = 0; i < av.local_size(); ++i) av[i] *= inv_diag_[i];
      lambda = std::abs(v.dot(av));
      v.update(1.0, av, 0.0);
    }
    return lambda * 1.1;  // safety margin
  }

  const Matrix& a_;
  int degree_;
  Vector inv_diag_;
  double lambda_max_ = 0.0;
  double lambda_min_ = 0.0;
};

/// Local ILU(0): incomplete LU on this rank's diagonal block with the
/// original sparsity pattern; off-rank couplings are dropped (zero-overlap
/// additive Schwarz, Ifpack's default).
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const Matrix& a);

  void apply(const Vector& r, Vector& z) const override;

  std::string name() const override { return "ILU(0)"; }

 private:
  LO n_ = 0;
  // Local CSR of the factored diagonal block: row_ptr/col/val with L
  // (unit-diagonal, stored strictly lower), D (inverted), U (strictly
  // upper) interleaved in column-sorted order per row.
  std::vector<std::int64_t> row_ptr_;
  std::vector<LO> col_;
  std::vector<double> val_;
  std::vector<std::int64_t> diag_pos_;
};

/// Factory keyed by name: "identity", "jacobi", "gauss-seidel", "sor",
/// "ilu0", "chebyshev".
std::unique_ptr<Preconditioner> create_preconditioner(const std::string& kind,
                                                      const Matrix& a);

}  // namespace pyhpc::precond
