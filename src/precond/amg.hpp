// Smoothed-aggregation algebraic multigrid V-cycle — the ML analogue from
// the paper's Table I ("ML — multi-level (algebraic multigrid)
// preconditioners").
//
// Pipeline per level (see DESIGN.md §5):
//  1. processor-local greedy distance-1 aggregation;
//  2. tentative piecewise-constant prolongator P0;
//  3. prolongator smoothing P = (I - omega D^{-1} A) P0 with
//     omega = 4/3 / lambda_max(D^{-1} A) (ML's default damping) — this is
//     what turns the weakly converging "unsmoothed aggregation" into a
//     proper multigrid method;
//  4. distributed Galerkin triple product A_c = P^T A P (ghost aggregate
//     ids and ghost P rows travel via the matrix's Import plan and an
//     alltoallv handshake; coarse contributions are routed to their owner);
//  5. damped-Jacobi pre/post smoothing, replicated dense-LU coarse solve.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "precond/preconditioner.hpp"
#include "tpetra/import_export.hpp"
#include "util/dense_lu.hpp"

namespace pyhpc::precond {

struct AmgOptions {
  int max_levels = 10;
  /// Stop coarsening when the global size drops to this or below.
  std::int64_t coarse_size = 32;
  int pre_smooth_sweeps = 1;
  int post_smooth_sweeps = 1;
  double jacobi_omega = 0.8;
  /// Prolongator damping as a multiple of 1/lambda_max(D^{-1}A); 0 disables
  /// smoothing (plain aggregation — exposed for the ablation bench).
  double prolongator_damping = 4.0 / 3.0;
};

class AmgPreconditioner final : public Preconditioner {
 public:
  explicit AmgPreconditioner(const Matrix& a, AmgOptions options = {});

  /// z := V-cycle(r) with zero initial guess. Collective.
  void apply(const Vector& r, Vector& z) const override;

  std::string name() const override { return "AMG"; }

  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Global unknown count per level (diagnostics / tests).
  std::vector<std::int64_t> level_sizes() const;

  /// Operator complexity: sum of nnz over levels / nnz(A). Collective.
  double operator_complexity() const;

 private:
  /// Distributed rectangular prolongator stored as a local CSR whose
  /// columns index an overlapping map of referenced coarse gids; data
  /// motion happens through one Import plan per level.
  struct Prolongator {
    std::vector<std::int64_t> row_ptr;  // fine local rows
    std::vector<LO> col;                // index into overlap map
    std::vector<double> val;
    std::shared_ptr<Map> overlap_map;   // referenced coarse gids, this rank
    std::shared_ptr<tpetra::Import<>> import_plan;  // coarse -> overlap

    /// z += P e_c (collective: ghosts e_c).
    void prolongate(const Vector& ec, Vector& z) const;
    /// rc := P^T r (collective: exports contributions to owners).
    void restrict_to(const Vector& r, Vector& rc) const;
  };

  struct Level {
    std::shared_ptr<Matrix> a;
    Vector inv_diag;  // Jacobi smoother workspace
    std::shared_ptr<Map> coarse_map;
    Prolongator p;

    explicit Level(std::shared_ptr<Matrix> mat)
        : a(std::move(mat)), inv_diag(a->row_map()) {}
  };

  void build_hierarchy(std::shared_ptr<Matrix> a);
  static std::vector<LO> aggregate_local(const Matrix& a, LO& num_aggregates);
  static double estimate_diag_scaled_lambda_max(const Matrix& a,
                                                const Vector& inv_diag);
  /// Builds the smoothed prolongator and returns the Galerkin coarse
  /// operator (collective).
  std::shared_ptr<Matrix> build_transfer_and_coarse(
      Level& level, const std::vector<LO>& agg_of) const;
  void vcycle(std::size_t lvl, const Vector& r, Vector& z) const;
  void smooth(const Level& level, const Vector& r, Vector& z,
              int sweeps) const;

  AmgOptions options_;
  std::vector<Level> levels_;
  // Replicated coarsest solve.
  std::unique_ptr<util::DenseLU> coarse_lu_;
};

}  // namespace pyhpc::precond
