// Setup-cache adapters for preconditioner factorizations (DESIGN.md §10).
// ILU(0) and AMG setup dominate solve cost on small repeated problems;
// keying the built preconditioner on the matrix's *structure* fingerprint
// amortizes that setup across the service's repeated-structure workload.
//
// Correctness caveat, by design: a structure-keyed hit reuses the
// factorization built from the FIRST matrix values seen with that
// sparsity pattern. That is the classic "reuse preconditioner" trade
// (Trilinos' Ifpack reuse flag): the preconditioner stays a valid
// operator — any fixed SPD-ish M only changes convergence speed, not the
// answer Krylov converges to — but callers whose values drift far should
// clear the cache. Tests pin both behaviours.
#pragma once

#include <memory>

#include "precond/amg.hpp"
#include "precond/preconditioner.hpp"
#include "tpetra/structure.hpp"
#include "util/setup_cache.hpp"
#include "util/string_util.hpp"

namespace pyhpc::precond {

/// ILU(0) keyed on the matrix structure fingerprint.
inline std::shared_ptr<Ilu0Preconditioner> cached_ilu0(
    util::SetupCache& cache, const Matrix& a) {
  const std::string key =
      util::cat("ilu0:", tpetra::structure_fingerprint(a));
  return cache.get_or_build<Ilu0Preconditioner>(
      key, [&] { return std::make_shared<Ilu0Preconditioner>(a); });
}

/// AMG keyed on the matrix structure fingerprint plus the setup-relevant
/// options (hierarchy shape depends on them). Collective on miss — the
/// lockstep requirement of tpetra::cached_import applies.
inline std::shared_ptr<AmgPreconditioner> cached_amg(
    util::SetupCache& cache, const Matrix& a, const AmgOptions& opts = {}) {
  util::Fingerprint ofp;
  ofp.mix(static_cast<std::uint64_t>(opts.max_levels));
  ofp.mix(static_cast<std::uint64_t>(opts.coarse_size));
  ofp.mix(static_cast<std::uint64_t>(opts.pre_smooth_sweeps));
  ofp.mix(static_cast<std::uint64_t>(opts.post_smooth_sweeps));
  ofp.mix_bytes(&opts.jacobi_omega, sizeof(opts.jacobi_omega));
  ofp.mix_bytes(&opts.prolongator_damping, sizeof(opts.prolongator_damping));
  const std::string key =
      util::cat("amg:", tpetra::structure_fingerprint(a), ":", ofp.digest());
  return cache.get_or_build<AmgPreconditioner>(
      key, [&] { return std::make_shared<AmgPreconditioner>(a, opts); });
}

}  // namespace pyhpc::precond
