#include "precond/amg.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <unordered_map>

#include "util/exec_space.hpp"
#include "util/task_pool.hpp"

namespace pyhpc::precond {

AmgPreconditioner::AmgPreconditioner(const Matrix& a, AmgOptions options)
    : options_(options) {
  require(options_.max_levels >= 1, "AMG: max_levels must be >= 1");
  require(options_.coarse_size >= 1, "AMG: coarse_size must be >= 1");
  build_hierarchy(std::make_shared<Matrix>(a));
}

void AmgPreconditioner::build_hierarchy(std::shared_ptr<Matrix> a) {
  for (int lvl = 0; lvl < options_.max_levels; ++lvl) {
    levels_.emplace_back(a);
    Level& level = levels_.back();

    Vector diag(a->row_map());
    a->get_local_diag_copy(diag);
    for (LO i = 0; i < diag.local_size(); ++i) {
      require<NumericalError>(diag[i] != 0.0, "AMG: zero diagonal entry");
      level.inv_diag[i] = 1.0 / diag[i];
    }

    if (a->row_map().num_global() <= options_.coarse_size ||
        lvl + 1 == options_.max_levels) {
      break;  // this becomes the coarsest level
    }

    LO num_aggregates = 0;
    auto agg_of = aggregate_local(*a, num_aggregates);
    level.coarse_map = std::make_shared<Map>(
        Map::from_local_sizes(a->row_map().comm(), num_aggregates));

    // A stalled coarsening (no global reduction) ends the hierarchy.
    if (level.coarse_map->num_global() >= a->row_map().num_global()) {
      level.coarse_map.reset();
      break;
    }

    a = build_transfer_and_coarse(level, agg_of);
  }

  // Replicated dense LU of the coarsest operator.
  const Matrix& coarse = *levels_.back().a;
  const auto n = coarse.row_map().num_global();
  struct Triple {
    GO row;
    GO col;
    double val;
  };
  std::vector<Triple> mine;
  for (LO i = 0; i < coarse.num_local_rows(); ++i) {
    const GO g = coarse.row_map().local_to_global(i);
    for (const auto& [c, v] : coarse.get_global_row(g)) {
      mine.push_back(Triple{g, c, v});
    }
  }
  auto chunks =
      coarse.row_map().comm().allgatherv(std::span<const Triple>(mine));
  std::vector<double> dense(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
  for (const auto& chunk : chunks) {
    for (const auto& t : chunk) {
      dense[static_cast<std::size_t>(t.row) * static_cast<std::size_t>(n) +
            static_cast<std::size_t>(t.col)] += t.val;
    }
  }
  coarse_lu_ = std::make_unique<util::DenseLU>(static_cast<std::size_t>(n),
                                               std::move(dense));
}

// Greedy distance-1 aggregation over the local diagonal block: every
// unaggregated node with an untouched neighbourhood seeds an aggregate with
// its unaggregated local neighbours; leftovers join an adjacent aggregate
// when possible.
std::vector<std::int32_t> AmgPreconditioner::aggregate_local(
    const Matrix& a, LO& num_aggregates) {
  const LO n = a.row_map().num_local();
  auto row_ptr = a.row_ptr();
  auto col_ind = a.col_ind();
  std::vector<LO> agg(static_cast<std::size_t>(n), -1);
  num_aggregates = 0;

  auto neighbours = [&](LO i, auto&& fn) {
    for (auto k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const LO c = col_ind[static_cast<std::size_t>(k)];
      if (c < n && c != i) fn(c);
    }
  };

  for (LO i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] != -1) continue;
    bool clean = true;
    neighbours(i, [&](LO c) {
      if (agg[static_cast<std::size_t>(c)] != -1) clean = false;
    });
    if (!clean) continue;
    const LO id = num_aggregates++;
    agg[static_cast<std::size_t>(i)] = id;
    neighbours(i, [&](LO c) { agg[static_cast<std::size_t>(c)] = id; });
  }
  for (LO i = 0; i < n; ++i) {
    if (agg[static_cast<std::size_t>(i)] != -1) continue;
    LO joined = -1;
    neighbours(i, [&](LO c) {
      if (joined == -1 && agg[static_cast<std::size_t>(c)] != -1) {
        joined = agg[static_cast<std::size_t>(c)];
      }
    });
    agg[static_cast<std::size_t>(i)] = joined != -1 ? joined : num_aggregates++;
  }
  return agg;
}

double AmgPreconditioner::estimate_diag_scaled_lambda_max(
    const Matrix& a, const Vector& inv_diag) {
  Vector v(a.range_map());
  v.randomize(4242);
  Vector av(a.range_map());
  double lambda = 1.0;
  for (int it = 0; it < 10; ++it) {
    const double nrm = v.norm2();
    if (nrm == 0.0) break;
    v.scale(1.0 / nrm);
    a.apply(v, av);
    for (LO i = 0; i < av.local_size(); ++i) av[i] *= inv_diag[i];
    lambda = std::abs(v.dot(av));
    v.update(1.0, av, 0.0);
  }
  return std::max(lambda, 1e-12);
}

std::shared_ptr<Matrix> AmgPreconditioner::build_transfer_and_coarse(
    Level& level, const std::vector<LO>& agg_of) const {
  const Matrix& a = *level.a;
  const Map& fmap = a.row_map();
  const Map& cmap = *level.coarse_map;
  auto& comm = fmap.comm();
  const int nranks = comm.size();
  const LO n = fmap.num_local();

  // Global aggregate id per fine row, ghosted into the column layout so the
  // smoothing sum can see the aggregates of remote neighbours.
  tpetra::Vector<GO> agg_gid(fmap);
  for (LO i = 0; i < n; ++i) {
    agg_gid[i] = cmap.local_to_global(agg_of[static_cast<std::size_t>(i)]);
  }
  tpetra::Vector<GO> agg_gid_ghost(a.col_map());
  agg_gid_ghost.do_import(agg_gid, a.importer(), tpetra::CombineMode::kInsert);

  // Prolongator rows as (coarse gid -> weight) maps:
  //   P(i, :) = e_{agg(i)} - omega * d_i^{-1} * sum_j A(i,j) e_{agg(j)}.
  double omega = 0.0;
  if (options_.prolongator_damping > 0.0) {
    omega = options_.prolongator_damping /
            estimate_diag_scaled_lambda_max(a, level.inv_diag);
  }
  auto row_ptr = a.row_ptr();
  auto col_ind = a.col_ind();
  auto vals = a.values();
  std::vector<std::map<GO, double>> prows(static_cast<std::size_t>(n));
  for (LO i = 0; i < n; ++i) {
    auto& row = prows[static_cast<std::size_t>(i)];
    row[agg_gid[i]] += 1.0;
    if (omega != 0.0) {
      for (auto k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const GO target = agg_gid_ghost[col_ind[static_cast<std::size_t>(k)]];
        row[target] -= omega * level.inv_diag[i] *
                       vals[static_cast<std::size_t>(k)];
      }
    }
  }

  // Compress into local CSR over an overlap map of the referenced coarse
  // gids (owned aggregates may appear plus remote neighbours).
  std::vector<GO> referenced;
  for (const auto& row : prows) {
    for (const auto& [g, w] : row) referenced.push_back(g);
  }
  std::sort(referenced.begin(), referenced.end());
  referenced.erase(std::unique(referenced.begin(), referenced.end()),
                   referenced.end());
  std::unordered_map<GO, LO> ref_index;
  ref_index.reserve(referenced.size());
  for (std::size_t k = 0; k < referenced.size(); ++k) {
    ref_index.emplace(referenced[k], static_cast<LO>(k));
  }

  Prolongator& p = level.p;
  p.row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (LO i = 0; i < n; ++i) {
    p.row_ptr[static_cast<std::size_t>(i) + 1] =
        p.row_ptr[static_cast<std::size_t>(i)] +
        static_cast<std::int64_t>(prows[static_cast<std::size_t>(i)].size());
  }
  p.col.resize(static_cast<std::size_t>(p.row_ptr.back()));
  p.val.resize(static_cast<std::size_t>(p.row_ptr.back()));
  for (LO i = 0; i < n; ++i) {
    std::size_t k = static_cast<std::size_t>(p.row_ptr[static_cast<std::size_t>(i)]);
    for (const auto& [g, w] : prows[static_cast<std::size_t>(i)]) {
      p.col[k] = ref_index.at(g);
      p.val[k] = w;
      ++k;
    }
  }
  p.overlap_map = std::make_shared<Map>(
      Map::from_global_indices(comm, std::span<const GO>(referenced)));
  p.import_plan = std::make_shared<tpetra::Import<>>(cmap, *p.overlap_map);

  // ---- Galerkin A_c = P^T A P -------------------------------------------
  // Ghost fine rows' P entries are needed for the j side of the product:
  // request them from their owners.
  const Map& colmap = a.col_map();
  std::vector<std::vector<GO>> requests(static_cast<std::size_t>(nranks));
  std::vector<GO> ghost_gids;
  for (LO c = n; c < colmap.num_local(); ++c) {
    ghost_gids.push_back(colmap.local_to_global(c));
  }
  auto owners = fmap.remote_index_list(std::span<const GO>(ghost_gids));
  for (std::size_t k = 0; k < ghost_gids.size(); ++k) {
    require<MapError>(owners[k].first >= 0, "AMG: unowned ghost fine index");
    requests[static_cast<std::size_t>(owners[k].first)].push_back(
        ghost_gids[k]);
  }
  auto incoming_requests = comm.alltoallv(requests);

  struct PEntry {
    GO fine;
    GO coarse;
    double w;
  };
  std::vector<std::vector<PEntry>> replies(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    for (GO fine : incoming_requests[static_cast<std::size_t>(r)]) {
      const LO li = fmap.global_to_local(fine);
      require<MapError>(li != tpetra::kInvalidLocal<LO>,
                        "AMG: P-row request for non-owned fine index");
      for (auto k = p.row_ptr[static_cast<std::size_t>(li)];
           k < p.row_ptr[static_cast<std::size_t>(li) + 1]; ++k) {
        replies[static_cast<std::size_t>(r)].push_back(PEntry{
            fine,
            p.overlap_map->local_to_global(p.col[static_cast<std::size_t>(k)]),
            p.val[static_cast<std::size_t>(k)]});
      }
    }
  }
  auto incoming_rows = comm.alltoallv(replies);
  std::unordered_map<GO, std::vector<std::pair<GO, double>>> ghost_prows;
  for (const auto& part : incoming_rows) {
    for (const auto& e : part) {
      ghost_prows[e.fine].emplace_back(e.coarse, e.w);
    }
  }

  // Accumulate triple-product contributions; rows of A_c may belong to
  // remote ranks (smoothed P couples local fine rows to remote aggregates),
  // so route triples by owner before insertion.
  struct Triple {
    GO row;
    GO col;
    double val;
  };
  std::vector<std::vector<Triple>> outgoing(static_cast<std::size_t>(nranks));
  // Local accumulation map to compress duplicates before shipping.
  std::map<std::pair<GO, GO>, double> acc;

  auto p_row_of_local = [&](LO i) {
    std::vector<std::pair<GO, double>> out;
    for (auto k = p.row_ptr[static_cast<std::size_t>(i)];
         k < p.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      out.emplace_back(
          p.overlap_map->local_to_global(p.col[static_cast<std::size_t>(k)]),
          p.val[static_cast<std::size_t>(k)]);
    }
    return out;
  };

  for (LO i = 0; i < n; ++i) {
    const auto pi = p_row_of_local(i);
    for (auto k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const LO cj = col_ind[static_cast<std::size_t>(k)];
      const double aij = vals[static_cast<std::size_t>(k)];
      const std::vector<std::pair<GO, double>>* pj = nullptr;
      std::vector<std::pair<GO, double>> pj_local;
      if (cj < n) {
        pj_local = p_row_of_local(cj);
        pj = &pj_local;
      } else {
        pj = &ghost_prows.at(colmap.local_to_global(cj));
      }
      for (const auto& [bigK, pik] : pi) {
        for (const auto& [bigL, pjl] : *pj) {
          acc[{bigK, bigL}] += pik * aij * pjl;
        }
      }
    }
  }
  for (const auto& [key, v] : acc) {
    const int owner = cmap.owner_of(key.first);
    outgoing[static_cast<std::size_t>(owner)].push_back(
        Triple{key.first, key.second, v});
  }
  auto incoming_triples = comm.alltoallv(outgoing);

  auto coarse = std::make_shared<Matrix>(cmap);
  for (const auto& part : incoming_triples) {
    for (const auto& t : part) {
      coarse->insert_global_value(t.row, t.col, t.val);
    }
  }
  coarse->fill_complete();
  return coarse;
}

void AmgPreconditioner::Prolongator::prolongate(const Vector& ec,
                                                Vector& z) const {
  Vector ghost(*overlap_map);
  ghost.do_import(ec, *import_plan, tpetra::CombineMode::kInsert);
  // Rows of P are independent, so the interpolation sweep threads over row
  // blocks like SpMV. (restrict_to stays serial: it scatters into shared
  // overlap entries.)
  const double* gv = ghost.local_view().data();
  double* zv = z.local_view().data();
  const std::int64_t* rp = row_ptr.data();
  const LO* ci = col.data();
  const double* va = val.data();
  util::exec::for_each(
      util::exec::default_space(), 0,
      static_cast<std::int64_t>(z.local_size()), tpetra::kRowGrain,
      [=](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          double acc = 0.0;
          const std::int64_t end = rp[i + 1];
          for (std::int64_t k = rp[i]; k < end; ++k) acc += va[k] * gv[ci[k]];
          zv[i] += acc;
        }
      });
}

void AmgPreconditioner::Prolongator::restrict_to(const Vector& r,
                                                 Vector& rc) const {
  Vector contrib(*overlap_map, 0.0);
  const LO n = r.local_size();
  for (LO i = 0; i < n; ++i) {
    for (auto k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      contrib[col[static_cast<std::size_t>(k)]] +=
          val[static_cast<std::size_t>(k)] * r[i];
    }
  }
  rc.put_scalar(0.0);
  import_plan->apply_reverse<double>(contrib.local_view(), rc.local_view(),
                                     tpetra::CombineMode::kAdd);
}

void AmgPreconditioner::smooth(const Level& level, const Vector& r, Vector& z,
                               int sweeps) const {
  Vector az(level.a->range_map());
  const double* rv = r.local_view().data();
  const double* dv = level.inv_diag.local_view().data();
  const double* azv = az.local_view().data();
  double* zv = z.local_view().data();
  const double omega = options_.jacobi_omega;
  const auto n = static_cast<std::int64_t>(z.local_size());
  for (int s = 0; s < sweeps; ++s) {
    level.a->apply(z, az);
    util::exec::for_each(util::exec::default_space(), 0, n,
                         util::kDefaultGrain, [=](std::int64_t i) noexcept {
                           zv[i] += omega * dv[i] * (rv[i] - azv[i]);
                         });
  }
}

void AmgPreconditioner::vcycle(std::size_t lvl, const Vector& r,
                               Vector& z) const {
  const Level& level = levels_[lvl];
  if (lvl + 1 == levels_.size()) {
    // Coarsest: replicated dense solve.
    auto rg = r.gather_global();
    auto xg = coarse_lu_->solve(rg);
    const Map& map = level.a->row_map();
    for (LO i = 0; i < map.num_local(); ++i) {
      z[i] = xg[static_cast<std::size_t>(map.local_to_global(i))];
    }
    return;
  }

  smooth(level, r, z, options_.pre_smooth_sweeps);

  Vector resid(level.a->range_map());
  level.a->apply(z, resid);
  resid.update(1.0, r, -1.0);

  Vector rc(*level.coarse_map);
  level.p.restrict_to(resid, rc);
  Vector ec(*level.coarse_map, 0.0);
  vcycle(lvl + 1, rc, ec);
  level.p.prolongate(ec, z);

  smooth(level, r, z, options_.post_smooth_sweeps);
}

void AmgPreconditioner::apply(const Vector& r, Vector& z) const {
  z.put_scalar(0.0);
  vcycle(0, r, z);
}

std::vector<std::int64_t> AmgPreconditioner::level_sizes() const {
  std::vector<std::int64_t> out;
  out.reserve(levels_.size());
  for (const auto& level : levels_) {
    out.push_back(level.a->row_map().num_global());
  }
  return out;
}

double AmgPreconditioner::operator_complexity() const {
  double total = 0.0;
  for (const auto& level : levels_) {
    total += static_cast<double>(level.a->num_global_entries());
  }
  return total / static_cast<double>(levels_.front().a->num_global_entries());
}

}  // namespace pyhpc::precond
