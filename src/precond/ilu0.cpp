#include <algorithm>

#include "precond/preconditioner.hpp"
#include "util/exec_space.hpp"
#include "util/task_pool.hpp"

namespace pyhpc::precond {

// Extracts the local diagonal block (columns with local id < n are owned),
// sorts each row by column, and runs the classic IKJ ILU(0) factorization
// in place.
Ilu0Preconditioner::Ilu0Preconditioner(const Matrix& a) {
  require<MapError>(a.is_fill_complete(), "ILU(0): matrix not fill-complete");
  n_ = a.row_map().num_local();
  auto arp = a.row_ptr();
  auto aci = a.col_ind();
  auto av = a.values();

  // Diagonal-block extraction threads over row blocks (rows independent);
  // only the prefix sum between the two sweeps is serial. The IKJ
  // factorization below and the triangular solves in apply() stay serial —
  // both carry loop-carried dependencies across rows.
  const LO n = n_;
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  util::exec::for_each(
      util::exec::default_space(), 0, static_cast<std::int64_t>(n_),
      tpetra::kRowGrain, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          std::int64_t cnt = 0;
          for (auto k = arp[static_cast<std::size_t>(i)];
               k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
            if (aci[static_cast<std::size_t>(k)] < n) ++cnt;
          }
          row_ptr_[static_cast<std::size_t>(i) + 1] = cnt;
        }
      });
  for (LO i = 0; i < n_; ++i) {
    row_ptr_[static_cast<std::size_t>(i) + 1] +=
        row_ptr_[static_cast<std::size_t>(i)];
  }
  col_.resize(static_cast<std::size_t>(row_ptr_.back()));
  val_.resize(static_cast<std::size_t>(row_ptr_.back()));
  diag_pos_.assign(static_cast<std::size_t>(n_), -1);

  util::exec::for_each(
      util::exec::default_space(), 0, static_cast<std::int64_t>(n_),
      tpetra::kRowGrain, [&](std::int64_t lo, std::int64_t hi) {
        std::vector<std::pair<LO, double>> row;
        for (std::int64_t i = lo; i < hi; ++i) {
          row.clear();
          for (auto k = arp[static_cast<std::size_t>(i)];
               k < arp[static_cast<std::size_t>(i) + 1]; ++k) {
            const LO c = aci[static_cast<std::size_t>(k)];
            if (c < n) row.emplace_back(c, av[static_cast<std::size_t>(k)]);
          }
          std::sort(row.begin(), row.end());
          std::size_t k =
              static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i)]);
          for (const auto& [c, v] : row) {
            col_[k] = c;
            val_[k] = v;
            if (c == static_cast<LO>(i)) {
              diag_pos_[static_cast<std::size_t>(i)] =
                  static_cast<std::int64_t>(k);
            }
            ++k;
          }
          require<NumericalError>(diag_pos_[static_cast<std::size_t>(i)] >= 0,
                                  "ILU(0): structurally zero diagonal");
        }
      });

  // IKJ factorization restricted to the existing pattern.
  // For each row i, for each k < i present in row i:
  //   a_ik /= a_kk; then for j > k present in both row i and row k:
  //   a_ij -= a_ik * a_kj.
  std::vector<std::int64_t> pos_in_row(static_cast<std::size_t>(n_), -1);
  for (LO i = 0; i < n_; ++i) {
    const auto beg = row_ptr_[static_cast<std::size_t>(i)];
    const auto end = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (auto k = beg; k < end; ++k) {
      pos_in_row[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])] = k;
    }
    for (auto kk = beg; kk < end; ++kk) {
      const LO k = col_[static_cast<std::size_t>(kk)];
      if (k >= i) break;  // columns sorted; done with the strictly-lower part
      const double dkk = val_[static_cast<std::size_t>(
          diag_pos_[static_cast<std::size_t>(k)])];
      require<NumericalError>(dkk != 0.0, "ILU(0): zero pivot");
      const double lik = val_[static_cast<std::size_t>(kk)] / dkk;
      val_[static_cast<std::size_t>(kk)] = lik;
      // Update row i with row k's upper part, pattern-restricted.
      for (auto kj = diag_pos_[static_cast<std::size_t>(k)] + 1;
           kj < row_ptr_[static_cast<std::size_t>(k) + 1]; ++kj) {
        const LO j = col_[static_cast<std::size_t>(kj)];
        const auto pij = pos_in_row[static_cast<std::size_t>(j)];
        if (pij >= 0) {
          val_[static_cast<std::size_t>(pij)] -=
              lik * val_[static_cast<std::size_t>(kj)];
        }
      }
    }
    for (auto k = beg; k < end; ++k) {
      pos_in_row[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])] = -1;
    }
    require<NumericalError>(
        val_[static_cast<std::size_t>(diag_pos_[static_cast<std::size_t>(i)])] !=
            0.0,
        "ILU(0): zero pivot after elimination");
  }
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z) const {
  // Solve L y = r (unit lower), then U z = y.
  require(r.local_size() == n_ && z.local_size() == n_,
          "ILU(0): vector size mismatch");
  std::vector<double> y(static_cast<std::size_t>(n_));
  for (LO i = 0; i < n_; ++i) {
    double acc = r[i];
    for (auto k = row_ptr_[static_cast<std::size_t>(i)];
         k < diag_pos_[static_cast<std::size_t>(i)]; ++k) {
      acc -= val_[static_cast<std::size_t>(k)] *
             y[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = acc;
  }
  for (LO i = n_ - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (auto k = diag_pos_[static_cast<std::size_t>(i)] + 1;
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      acc -= val_[static_cast<std::size_t>(k)] *
             static_cast<double>(z[col_[static_cast<std::size_t>(k)]]);
    }
    z[i] = acc / val_[static_cast<std::size_t>(
                     diag_pos_[static_cast<std::size_t>(i)])];
  }
}

std::unique_ptr<Preconditioner> create_preconditioner(const std::string& kind,
                                                      const Matrix& a) {
  if (kind == "identity" || kind == "none") {
    return std::make_unique<IdentityPreconditioner>();
  }
  if (kind == "jacobi") return std::make_unique<JacobiPreconditioner>(a);
  if (kind == "gauss-seidel") {
    return std::make_unique<GaussSeidelPreconditioner>(a);
  }
  if (kind == "sor") {
    return std::make_unique<GaussSeidelPreconditioner>(
        a, 1.5, 1, GaussSeidelPreconditioner::Direction::kForward);
  }
  if (kind == "ilu0") return std::make_unique<Ilu0Preconditioner>(a);
  if (kind == "chebyshev") return std::make_unique<ChebyshevPreconditioner>(a);
  throw InvalidArgument("create_preconditioner: unknown kind '" + kind + "'");
}

}  // namespace pyhpc::precond
