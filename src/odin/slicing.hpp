// Distributed array slicing (§III.G): NumPy slice expressions over
// distributed arrays, including the shifted-slice pattern behind
// finite-difference stencils (`dy = y[1:] - y[:-1]`).
//
// The general `slice()` routes elements to a fresh block distribution of
// the result shape. `shifted_diff`/`shift` implement the stencil special
// case with a one-deep halo exchange, which is what an MPI programmer would
// hand-write — E3 measures both paths.
#pragma once

#include <algorithm>
#include <optional>

#include "odin/dist_array.hpp"
#include "odin/shape.hpp"

namespace pyhpc::odin {

/// General N-dimensional slice: result is block-distributed over the same
/// axes as the source (replicated axes stay replicated). Collective.
template <class T>
DistArray<T> slice(const DistArray<T>& a, const std::vector<Slice>& slices) {
  require<ShapeError>(slices.size() == static_cast<std::size_t>(a.ndim()),
                      "slice: need one Slice per axis");
  const Shape& gshape = a.shape();
  std::vector<Slice::Resolved> resolved;
  std::vector<index_t> out_dims;
  resolved.reserve(slices.size());
  for (int axis = 0; axis < a.ndim(); ++axis) {
    resolved.push_back(
        slices[static_cast<std::size_t>(axis)].resolve(gshape.extent(axis)));
    out_dims.push_back(resolved.back().count);
  }
  Shape out_shape(out_dims);

  // Result distribution: block over the source's first distributed axis
  // (axis 0 if fully replicated).
  int dist_axis = 0;
  for (int axis = 0; axis < a.ndim(); ++axis) {
    if (a.dist().grid_dim_of_axis(axis) >= 0) {
      dist_axis = axis;
      break;
    }
  }
  auto& comm = a.dist().comm();
  Distribution out_dist = Distribution::block(comm, out_shape, dist_axis);

  // Ship target indices and values as two flat per-destination buffers
  // rather than an Entry{index_t, T} struct: the struct carries padding
  // whenever alignof(T) < alignof(index_t), and padding bytes go over the
  // wire uninitialized (nondeterministic checksums under MSan) and inflate
  // the payload.
  const int p = comm.size();
  std::vector<std::vector<index_t>> out_indices(static_cast<std::size_t>(p));
  std::vector<std::vector<T>> out_values(static_cast<std::size_t>(p));
  std::vector<index_t> out_idx(static_cast<std::size_t>(a.ndim()), 0);
  for (index_t l = 0; l < a.local_size(); ++l) {
    const auto gidx = a.dist().global_of_local(l);
    bool inside = true;
    for (int axis = 0; axis < a.ndim() && inside; ++axis) {
      const auto& r = resolved[static_cast<std::size_t>(axis)];
      const index_t g = gidx[static_cast<std::size_t>(axis)];
      const index_t delta = g - r.first;
      if (r.step > 0) {
        inside = delta >= 0 && delta % r.step == 0 && delta / r.step < r.count;
        if (inside) out_idx[static_cast<std::size_t>(axis)] = delta / r.step;
      } else {
        const index_t back = r.first - g;
        inside = back >= 0 && back % (-r.step) == 0 &&
                 back / (-r.step) < r.count;
        if (inside) out_idx[static_cast<std::size_t>(axis)] = back / (-r.step);
      }
    }
    if (!inside) continue;
    const auto [owner, lidx] = out_dist.owner_of(out_idx);
    out_indices[static_cast<std::size_t>(owner)].push_back(lidx);
    out_values[static_cast<std::size_t>(owner)].push_back(
        a.local_view()[static_cast<std::size_t>(l)]);
  }
  auto in_indices = comm.alltoallv(out_indices);
  auto in_values = comm.alltoallv(out_values);

  DistArray<T> out(out_dist);
  auto view = out.local_view();
  for (int src = 0; src < p; ++src) {
    const auto& idx = in_indices[static_cast<std::size_t>(src)];
    const auto& val = in_values[static_cast<std::size_t>(src)];
    require<ShapeError>(idx.size() == val.size(),
                        "slice: index/value shuffle size mismatch");
    for (std::size_t i = 0; i < idx.size(); ++i) {
      view[static_cast<std::size_t>(idx[i])] = val[i];
    }
  }
  return out;
}

/// 1D convenience overload.
template <class T>
DistArray<T> slice1d(const DistArray<T>& a, Slice s) {
  return slice(a, std::vector<Slice>{s});
}

/// diff(a): a[1:] - a[:-1] for a 1D block-distributed array, implemented
/// with a one-element halo exchange instead of a general redistribution —
/// the hand-optimized path E3 compares against. Collective.
template <class T>
DistArray<T> shifted_diff(const DistArray<T>& a) {
  require<ShapeError>(a.ndim() == 1, "shifted_diff: needs a 1D array");
  require<ShapeError>(a.dist().axis_spec(0).scheme == Scheme::kBlock ||
                          a.dist().axis_spec(0).scheme == Scheme::kExplicit,
                      "shifted_diff: needs a contiguous block distribution");
  const index_t n = a.shape().extent(0);
  require<ShapeError>(n >= 1, "shifted_diff: empty array");
  auto& comm = a.dist().comm();
  const int p = comm.size();
  const int r = comm.rank();

  // Result y[k] = a[k+1] - a[k] for k in [0, n-1), distributed like the
  // first n-1 entries of `a` truncated by one at the last nonempty rank.
  // Each rank needs one halo value: the first element of the next
  // nonempty rank.
  const index_t my_count = a.local_size();
  // Find my successor rank with data (static: from axis counts).
  int next_with_data = -1;
  for (int q = r + 1; q < p; ++q) {
    if (a.dist().axis_count(0, q) > 0) {
      next_with_data = q;
      break;
    }
  }
  int prev_with_data = -1;
  for (int q = r - 1; q >= 0; --q) {
    if (a.dist().axis_count(0, q) > 0) {
      prev_with_data = q;
      break;
    }
  }

  // The halo exchange runs on the reserved internal tag (comm::kHaloTag):
  // a user tag here would collide with unrelated application traffic on
  // the same tag and silently cross-match. Overlap structure: post the
  // halo receive first, send our own boundary value, run the interior
  // stencil while the halo is in flight, and fill the boundary element
  // last.
  std::optional<comm::PendingRecv> halo_recv;
  if (my_count > 0 && next_with_data >= 0) {
    halo_recv.emplace(comm.irecv_internal(next_with_data, comm::kHaloTag));
  }
  if (my_count > 0 && prev_with_data >= 0) {
    comm.send_value_internal(a.local_view()[0], prev_with_data,
                             comm::kHaloTag);
  }

  // Local output: my_count results when a halo exists, otherwise one fewer
  // (the global last element produces no difference).
  std::vector<index_t> sizes(static_cast<std::size_t>(p), 0);
  for (int q = 0; q < p; ++q) {
    const index_t c = a.dist().axis_count(0, q);
    bool q_has_next = false;
    for (int w = q + 1; w < p; ++w) {
      if (a.dist().axis_count(0, w) > 0) {
        q_has_next = true;
        break;
      }
    }
    sizes[static_cast<std::size_t>(q)] = c == 0 ? 0 : (q_has_next ? c : c - 1);
  }
  Distribution out_dist = Distribution::explicit_block(
      comm, Shape({n - 1}), 0, sizes);
  DistArray<T> out(out_dist);
  auto in = a.local_view();
  auto view = out.local_view();
  const index_t out_n = static_cast<index_t>(view.size());
  {
    obs::Span span("shifted_diff.overlap", "odin");
    if (span.active()) {
      span.arg("interior", static_cast<std::int64_t>(
                               my_count > 0 ? my_count - 1 : 0));
      span.arg("halo", static_cast<std::int64_t>(halo_recv ? 1 : 0));
    }
    const T* inp = in.data();
    T* outp = view.data();
    // Element body: the interior stencil reads inp at two offsets of one
    // contiguous buffer, so the SIMD backend vectorizes it (unaligned
    // loads on the +1 stream — still profitable).
    util::exec::for_each(util::exec::default_space(), 0,
                         my_count > 0 ? my_count - 1 : 0, util::kDefaultGrain,
                         [inp, outp](std::int64_t k) noexcept {
                           outp[k] = inp[k + 1] - inp[k];
                         });
  }
  if (halo_recv.has_value() && out_n == my_count) {
    const T halo =
        comm::PendingRecv::take<T>(halo_recv->wait()).at(0);
    view[static_cast<std::size_t>(my_count - 1)] =
        halo - in[static_cast<std::size_t>(my_count - 1)];
  }
  return out;
}

}  // namespace pyhpc::odin
