// ODIN <-> Tpetra interop (§III.E: "ODIN arrays are designed to be
// optionally compatible with Trilinos distributed Vectors and MultiVectors
// and their associated global-to-local mapping class, allowing ODIN users
// to use Trilinos packages via the expanded PyTrilinos wrappers").
//
// A 1D contiguous-block ODIN array corresponds exactly to a Tpetra Vector
// over a Map with the same per-rank section sizes, so the conversion is a
// zero-communication local copy; other layouts redistribute to block form
// first.
#pragma once

#include "odin/dist_array.hpp"
#include "tpetra/map.hpp"
#include "tpetra/vector.hpp"

namespace pyhpc::odin {

/// The Tpetra map matching a 1D block/explicit ODIN distribution.
inline tpetra::Map<> tpetra_map_of(const Distribution& dist) {
  require<ShapeError>(dist.ndim() == 1,
                      "tpetra_map_of: only 1D arrays map to Vectors");
  const auto& spec = dist.axis_spec(0);
  require<ShapeError>(spec.scheme == Scheme::kBlock ||
                          spec.scheme == Scheme::kExplicit ||
                          spec.scheme == Scheme::kReplicated,
                      "tpetra_map_of: needs a contiguous block distribution");
  if (spec.scheme == Scheme::kReplicated) {
    // A replicated axis corresponds to a rank-0-owned map only in the
    // degenerate single-rank case.
    require<ShapeError>(dist.num_ranks() == 1,
                        "tpetra_map_of: replicated arrays need 1 rank");
  }
  return tpetra::Map<>::from_local_sizes(
      dist.comm(), static_cast<std::int32_t>(dist.local_count()));
}

/// ODIN array -> Tpetra Vector (local copy for block layouts; other
/// layouts are redistributed first — collective in that case).
inline tpetra::Vector<double> to_tpetra(const DistArray<double>& a) {
  const auto& spec0 = a.dist().axis_spec(0);
  if (a.ndim() == 1 && (spec0.scheme == Scheme::kBlock ||
                        spec0.scheme == Scheme::kExplicit ||
                        (spec0.scheme == Scheme::kReplicated &&
                         a.dist().num_ranks() == 1))) {
    auto map = tpetra_map_of(a.dist());
    tpetra::Vector<double> v(map);
    auto src = a.local_view();
    auto dst = v.local_view();
    std::copy(src.begin(), src.end(), dst.begin());
    return v;
  }
  require<ShapeError>(a.ndim() == 1,
                      "to_tpetra: only 1D arrays convert to Vectors");
  DistArray<double> blocked =
      redistribute(a, Distribution::block(a.dist().comm(), a.shape(), 0));
  return to_tpetra(blocked);
}

/// Tpetra Vector -> ODIN block array (requires a contiguous Tpetra map;
/// local copy, no communication).
inline DistArray<double> from_tpetra(const tpetra::Vector<double>& v) {
  require<ShapeError>(v.map().is_contiguous(),
                      "from_tpetra: needs a contiguous Tpetra map");
  auto& comm = v.map().comm();
  std::vector<index_t> sizes(static_cast<std::size_t>(comm.size()), 0);
  auto counts = comm.allgather_value<index_t>(v.local_size());
  for (int r = 0; r < comm.size(); ++r) {
    sizes[static_cast<std::size_t>(r)] = counts[static_cast<std::size_t>(r)];
  }
  Distribution dist = Distribution::explicit_block(
      comm, Shape({static_cast<index_t>(v.global_size())}), 0, sizes);
  DistArray<double> a(dist);
  auto src = v.local_view();
  auto dst = a.local_view();
  std::copy(src.begin(), src.end(), dst.begin());
  return a;
}

}  // namespace pyhpc::odin
