#include "odin/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <vector>

namespace pyhpc::odin {

namespace {

constexpr std::uint64_t kMagic = 0x4f44494e41525259ULL;  // "ODINARRY"
constexpr int kMaxDims = 4;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint64_t elem_size = sizeof(double);
  std::int64_t ndim = 0;
  std::int64_t dims[kMaxDims] = {0, 0, 0, 0};
};

// RAII fd wrapper.
class File {
 public:
  File(const std::string& path, int flags, mode_t mode = 0644)
      : fd_(::open(path.c_str(), flags, mode)) {
    require(fd_ >= 0, "odin io: cannot open " + path);
  }
  ~File() {
    if (fd_ >= 0) ::close(fd_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  void pwrite_all(const void* buf, std::size_t n, off_t off) const {
    const char* p = static_cast<const char*>(buf);
    while (n > 0) {
      const ssize_t w = ::pwrite(fd_, p, n, off);
      require(w > 0, "odin io: write failed");
      p += w;
      off += w;
      n -= static_cast<std::size_t>(w);
    }
  }

  void pread_all(void* buf, std::size_t n, off_t off) const {
    char* p = static_cast<char*>(buf);
    while (n > 0) {
      const ssize_t r = ::pread(fd_, p, n, off);
      require(r > 0, "odin io: short read (file truncated?)");
      p += r;
      off += r;
      n -= static_cast<std::size_t>(r);
    }
  }

 private:
  int fd_;
};

// Absolute element offset of a global multi-index (row-major).
std::int64_t linear_of(const Shape& shape, const std::vector<index_t>& gidx) {
  const auto strides = shape.strides();
  std::int64_t lin = 0;
  for (std::size_t a = 0; a < gidx.size(); ++a) {
    lin += gidx[a] * strides[a];
  }
  return lin;
}

}  // namespace

void write_distributed(const DistArray<double>& a, const std::string& path) {
  const Shape& shape = a.shape();
  require(shape.ndim() <= kMaxDims, "odin io: too many dimensions");
  auto& comm = a.dist().comm();

  if (comm.rank() == 0) {
    Header h;
    h.ndim = shape.ndim();
    for (int d = 0; d < shape.ndim(); ++d) h.dims[d] = shape.extent(d);
    File f(path, O_WRONLY | O_CREAT | O_TRUNC);
    f.pwrite_all(&h, sizeof(h), 0);
    // Pre-size the data region so concurrent pwrites land inside the file.
    const off_t end =
        static_cast<off_t>(sizeof(Header)) +
        static_cast<off_t>(shape.count()) * static_cast<off_t>(sizeof(double));
    if (shape.count() > 0) {
      const double zero = 0.0;
      f.pwrite_all(&zero, sizeof(zero), end - static_cast<off_t>(sizeof(double)));
    }
  }
  comm.barrier();  // header visible before anyone writes data

  File f(path, O_WRONLY);
  // Coalesce runs of consecutive file offsets into single pwrites.
  const auto view = a.local_view();
  index_t run_start = 0;
  std::int64_t run_off = -2;
  std::int64_t first_off = 0;
  for (index_t l = 0; l <= a.local_size(); ++l) {
    std::int64_t off = -1;
    if (l < a.local_size()) {
      off = linear_of(shape, a.dist().global_of_local(l));
    }
    if (off != run_off + 1 || l == a.local_size()) {
      if (l > run_start) {
        f.pwrite_all(view.data() + run_start,
                     static_cast<std::size_t>(l - run_start) * sizeof(double),
                     static_cast<off_t>(sizeof(Header)) +
                         static_cast<off_t>(first_off) *
                             static_cast<off_t>(sizeof(double)));
      }
      run_start = l;
      first_off = off;
    }
    run_off = off;
  }
  comm.barrier();  // file complete before anyone returns
}

Shape read_stored_shape(comm::Communicator& comm, const std::string& path) {
  Header h;
  if (comm.rank() == 0) {
    File f(path, O_RDONLY);
    f.pread_all(&h, sizeof(h), 0);
    require(h.magic == kMagic, "odin io: bad magic in " + path);
    require(h.elem_size == sizeof(double), "odin io: element size mismatch");
    require(h.ndim >= 0 && h.ndim <= kMaxDims, "odin io: bad rank");
  }
  comm.broadcast(std::span<Header>(&h, 1), 0);
  std::vector<index_t> dims;
  for (int d = 0; d < h.ndim; ++d) dims.push_back(h.dims[d]);
  return Shape(dims);
}

DistArray<double> read_distributed(const Distribution& dist,
                                   const std::string& path) {
  auto& comm = dist.comm();
  const Shape stored = read_stored_shape(comm, path);
  require<ShapeError>(stored == dist.global_shape(),
                      "odin io: stored shape " + stored.to_string() +
                          " does not match requested distribution " +
                          dist.global_shape().to_string());

  DistArray<double> a(dist);
  File f(path, O_RDONLY);
  auto view = a.local_view();
  // Same run-coalescing as the writer.
  index_t run_start = 0;
  std::int64_t run_off = -2;
  std::int64_t first_off = 0;
  for (index_t l = 0; l <= a.local_size(); ++l) {
    std::int64_t off = -1;
    if (l < a.local_size()) {
      off = linear_of(stored, dist.global_of_local(l));
    }
    if (off != run_off + 1 || l == a.local_size()) {
      if (l > run_start) {
        f.pread_all(view.data() + run_start,
                    static_cast<std::size_t>(l - run_start) * sizeof(double),
                    static_cast<off_t>(sizeof(Header)) +
                        static_cast<off_t>(first_off) *
                            static_cast<off_t>(sizeof(double)));
      }
      run_start = l;
      first_off = off;
    }
    run_off = off;
  }
  return a;
}

}  // namespace pyhpc::odin
