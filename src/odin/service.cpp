#include "odin/service.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/string_util.hpp"

namespace pyhpc::odin {

namespace {

obs::MetricsRegistry& metrics() { return obs::MetricsRegistry::global(); }

}  // namespace

// ---- Session ------------------------------------------------------------

Session& Session::operator=(Session&& other) noexcept {
  if (this != &other) {
    if (svc_ != nullptr) {
      try {
        svc_->close_session(id_);
      } catch (...) {
        // Best-effort, same as the destructor.
      }
    }
    svc_ = other.svc_;
    id_ = other.id_;
    other.svc_ = nullptr;
  }
  return *this;
}

Session::~Session() {
  if (svc_ == nullptr) return;
  try {
    svc_->close_session(id_);
  } catch (...) {
    // Destructors must not throw; a failed close surfaces through the
    // service's worker-lost paths instead.
  }
}

int Session::create_random(std::int64_t n, std::uint64_t seed) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateRandom;
  m.n = n;
  m.scalar = static_cast<double>(seed);
  return svc_->op(id_, m, /*fresh_result=*/true);
}

int Session::create_full(std::int64_t n, double value) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateFull;
  m.n = n;
  m.scalar = value;
  return svc_->op(id_, m, /*fresh_result=*/true);
}

int Session::unary(const std::string& ufunc, int a) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kUnary;
  m.arg0 = a;
  m.set_name(ufunc);
  return svc_->op(id_, m, /*fresh_result=*/true);
}

int Session::binary(const std::string& ufunc, int a, int b) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kBinary;
  m.arg0 = a;
  m.arg1 = b;
  m.set_name(ufunc);
  return svc_->op(id_, m, /*fresh_result=*/true);
}

int Session::axpy(double alpha, int x, int y) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kAxpy;
  m.arg0 = x;
  m.arg1 = y;
  m.scalar = alpha;
  return svc_->op(id_, m, /*fresh_result=*/true);
}

int Session::block_solve(int b) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kBlockSolve;
  m.arg0 = b;
  return svc_->op(id_, m, /*fresh_result=*/true);
}

void Session::free_array(int id) {
  require(valid(), "Session: handle is closed");
  ControlMessage m;
  m.op = ControlMessage::Op::kFree;
  m.arg0 = id;
  svc_->op(id_, m, /*fresh_result=*/false);
}

double Session::reduce_sum(int a) {
  require(valid(), "Session: handle is closed");
  return svc_->reduce(id_, a);
}

void Session::flush() {
  require(valid(), "Session: handle is closed");
  svc_->flush_session(id_);
}

void Session::close() {
  if (svc_ == nullptr) return;
  ServiceContext* svc = svc_;
  svc_ = nullptr;  // invalidate first: close() below may throw
  svc->close_session(id_);
}

// ---- ServiceContext -----------------------------------------------------

ServiceContext::ServiceContext(comm::Communicator& comm,
                               const ServiceOptions& options)
    : opts_(options), driver_(comm, options.driver) {
  require(opts_.session_queue_limit > 0,
          "ServiceOptions: session_queue_limit must be positive");
  require(opts_.batch_messages > 0,
          "ServiceOptions: batch_messages must be positive");
  require(opts_.session_quantum > 0,
          "ServiceOptions: session_quantum must be positive");
}

Session ServiceContext::open_session() {
  require(is_driver(), "ServiceContext: sessions are driver-side only");
  std::lock_guard<std::mutex> lock(mu_);
  const std::int32_t sid = next_session_++;
  sessions_[sid] = SessionState{};
  metrics().add("service.sessions_opened", 1.0);
  return Session(this, sid);
}

ServiceContext::SessionState& ServiceContext::state_locked(std::int32_t sid) {
  auto it = sessions_.find(sid);
  require(it != sessions_.end() && it->second.open,
          util::cat("ServiceContext: session ", sid, " is not open"));
  return it->second;
}

void ServiceContext::submit_locked(std::int32_t sid, ControlMessage msg) {
  SessionState& st = state_locked(sid);
  if (st.queue.size() >= opts_.session_queue_limit) {
    if (opts_.overload == OverloadPolicy::kShed) {
      ++sheds_;
      metrics().add("service.sheds", 1.0);
      throw QueueFullError(util::cat(
          "service: session ", sid, " queue full (",
          opts_.session_queue_limit, " messages) — operation shed"));
    }
    // Park: the submitting thread pays for the drain itself. Round-robin
    // dispatch inside flush_locked keeps this fair to other sessions.
    ++parks_;
    metrics().add("service.parks", 1.0);
    flush_locked();
  }
  msg.session = sid;
  if (queued_total_ == 0) window_start_ = std::chrono::steady_clock::now();
  st.queue.push_back(msg);
  ++queued_total_;
  ++submitted_;
  metrics().add("service.messages_submitted", 1.0);
  metrics().set_max("service.queue_highwater",
                    static_cast<double>(queued_total_));
}

void ServiceContext::maybe_flush_locked() {
  if (queued_total_ == 0) return;
  if (queued_total_ >= opts_.batch_messages) {
    flush_locked();
    return;
  }
  const auto waited = std::chrono::steady_clock::now() - window_start_;
  if (waited >= opts_.batch_window) flush_locked();
}

void ServiceContext::flush_locked() {
  if (queued_total_ == 0) return;
  obs::Span span("service.flush", "service");
  if (span.active()) {
    span.arg("messages", static_cast<std::int64_t>(queued_total_));
    span.arg("sessions", static_cast<std::int64_t>(sessions_.size()));
  }
  // Drain round-robin, session_quantum messages per session per turn, so
  // a flooding session's backlog interleaves with (not precedes) everyone
  // else's in the wire batch. rr_cursor_ rotates the starting session
  // across flushes so no session is systematically first.
  std::vector<ControlMessage> wire;
  wire.reserve(queued_total_);
  std::vector<SessionState*> order;
  order.reserve(sessions_.size());
  for (auto& [sid, st] : sessions_) order.push_back(&st);
  if (!order.empty()) {
    const std::size_t start = rr_cursor_ % order.size();
    rr_cursor_ = (rr_cursor_ + 1) % (order.empty() ? 1 : order.size());
    std::size_t remaining = queued_total_;
    while (remaining > 0) {
      for (std::size_t i = 0; i < order.size() && remaining > 0; ++i) {
        SessionState& st = *order[(start + i) % order.size()];
        for (std::size_t k = 0;
             k < opts_.session_quantum && !st.queue.empty(); ++k) {
          wire.push_back(st.queue.front());
          st.queue.pop_front();
          --remaining;
        }
      }
    }
  }
  queued_total_ = 0;
  ++batches_;
  metrics().add("service.batches_shipped", 1.0);
  metrics().add("service.messages_shipped", static_cast<double>(wire.size()));
  driver_.ship_batch(wire);
}

int ServiceContext::op(std::int32_t sid, ControlMessage msg,
                       bool fresh_result) {
  require(is_driver(), "ServiceContext: operations are driver-side only");
  std::lock_guard<std::mutex> lock(mu_);
  if (fresh_result) {
    msg.result_id = state_locked(sid).next_array_id++;
  }
  submit_locked(sid, msg);
  maybe_flush_locked();
  return msg.result_id;
}

double ServiceContext::reduce(std::int32_t sid, int a) {
  require(is_driver(), "ServiceContext: operations are driver-side only");
  std::lock_guard<std::mutex> lock(mu_);
  // A reduce is a sync point: drain the backlog first so admission
  // control never sheds or parks the collection request itself.
  flush_locked();
  ControlMessage m;
  m.op = ControlMessage::Op::kReduceSum;
  m.arg0 = a;
  submit_locked(sid, m);
  flush_locked();  // the reduce must be on the wire before we collect
  return driver_.collect_reduce(sid);
}

void ServiceContext::flush_session(std::int32_t sid) {
  require(is_driver(), "ServiceContext: flush is driver-side only");
  std::lock_guard<std::mutex> lock(mu_);
  state_locked(sid);  // validate the handle
  // Coalescing is global: closing one session's window ships everything.
  flush_locked();
}

void ServiceContext::close_session(std::int32_t sid) {
  require(is_driver(), "ServiceContext: close is driver-side only");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(sid);
  if (it == sessions_.end() || !it->second.open) return;  // idempotent
  flush_locked();  // sync point: the close must never be shed
  ControlMessage m;
  m.op = ControlMessage::Op::kCloseSession;
  submit_locked(sid, m);
  flush_locked();
  sessions_.erase(sid);
  metrics().add("service.sessions_closed", 1.0);
}

void ServiceContext::shutdown() {
  require(is_driver(), "ServiceContext: shutdown is driver-side only");
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
  driver_.shutdown();
  // The control plane is gone; surviving Session handles become no-ops
  // instead of retrying closes against workers that have exited.
  sessions_.clear();
  queued_total_ = 0;
}

std::size_t ServiceContext::open_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

std::size_t ServiceContext::pending_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_total_;
}

std::uint64_t ServiceContext::messages_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

std::uint64_t ServiceContext::batches_shipped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::uint64_t ServiceContext::sheds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sheds_;
}

std::uint64_t ServiceContext::parks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parks_;
}

}  // namespace pyhpc::odin
