#include "odin/dist_array.hpp"

namespace pyhpc::odin {

namespace {
// Per rank-thread so scopes inside a parallel region stay rank-local.
thread_local ConformStrategy g_conform_strategy = ConformStrategy::kAuto;
}  // namespace

ConformStrategy default_conform_strategy() { return g_conform_strategy; }

ConformStrategyScope::ConformStrategyScope(ConformStrategy strategy)
    : saved_(g_conform_strategy) {
  g_conform_strategy = strategy;
}

ConformStrategyScope::~ConformStrategyScope() {
  g_conform_strategy = saved_;
}

}  // namespace pyhpc::odin
