// DistArray<T>: ODIN's distributed N-dimensional array.
//
// Global mode (paper §III.B): creation routines and whole-array operations
// that "feel very much like regular NumPy arrays, even though computations
// are carried out in a distributed fashion". Local mode (§III.C) lives in
// odin/local.hpp; slicing in odin/slicing.hpp; lazy fused expressions in
// odin/expr.hpp.
#pragma once

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "odin/distribution.hpp"
#include "odin/shape.hpp"
#include "util/default_init.hpp"
#include "util/exec_space.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

namespace pyhpc::odin {

/// Which operand to redistribute when a binary op meets non-conformable
/// arrays (§III.D: ODIN "will choose a strategy that will minimize
/// communication, while allowing the knowledgeable user to modify its
/// behavior").
enum class ConformStrategy {
  kAuto,   // measure both directions, move the cheaper one
  kLeft,   // redistribute the left operand to the right's layout
  kRight,  // redistribute the right operand to the left's layout
};

/// The strategy operator sugar (a + b, ufuncs without an explicit strategy
/// argument) uses on this thread. Per rank-thread, so each rank of a
/// parallel region can scope its own override.
ConformStrategy default_conform_strategy();

/// Scoped override — the C++ shape of the paper's "allowing the
/// knowledgeable user to modify its behavior via Python context managers
/// and function decorators" (§III.D):
///
///   { odin::ConformStrategyScope scope(odin::ConformStrategy::kRight);
///     auto c = a + b;   // redistributes b, no measuring pass
///   }
class ConformStrategyScope {
 public:
  explicit ConformStrategyScope(ConformStrategy strategy);
  ~ConformStrategyScope();
  ConformStrategyScope(const ConformStrategyScope&) = delete;
  ConformStrategyScope& operator=(const ConformStrategyScope&) = delete;

 private:
  ConformStrategy saved_;
};

template <class T = double>
class DistArray {
 public:
  using value_type = T;

  /// Zero-initialized array over a distribution.
  explicit DistArray(Distribution dist)
      : dist_(std::make_shared<Distribution>(std::move(dist))),
        data_(static_cast<std::size_t>(dist_->local_count()), T{}) {}

  DistArray(Distribution dist, T fill)
      : dist_(std::make_shared<Distribution>(std::move(dist))),
        data_(static_cast<std::size_t>(dist_->local_count()), fill) {}

  /// Result-array factory for single-pass kernels (map, zip, fused eval,
  /// where, creation fills): the local buffer is allocated but NOT
  /// zero-filled, so the writing kernel's stores are the buffer's first
  /// touch instead of a second pass over freshly memset pages. Call-site
  /// rule: every local element must be written before it can be read —
  /// anything with partial or communication-dependent coverage
  /// (redistribute, slicing) takes the zeroing constructor instead.
  static DistArray uninitialized(Distribution dist) {
    return DistArray(std::move(dist), Uninit{});
  }

  const Distribution& dist() const { return *dist_; }
  const Shape& shape() const { return dist_->global_shape(); }
  int ndim() const { return dist_->ndim(); }
  index_t size() const { return shape().count(); }
  Shape local_shape() const { return dist_->local_shape(); }
  index_t local_size() const { return static_cast<index_t>(data_.size()); }

  std::span<T> local_view() { return data_; }
  std::span<const T> local_view() const { return data_; }

  T& local_at(index_t linear) { return data_[static_cast<std::size_t>(linear)]; }
  const T& local_at(index_t linear) const {
    return data_[static_cast<std::size_t>(linear)];
  }

  // ---- creation (global mode) ------------------------------------------

  static DistArray zeros(Distribution dist) {
    return DistArray(std::move(dist), T{});
  }
  static DistArray ones(Distribution dist) {
    return DistArray(std::move(dist), T{1});
  }
  static DistArray full(Distribution dist, T value) {
    return DistArray(std::move(dist), value);
  }

  /// 1D arange [start, start + n*step) over an existing distribution.
  static DistArray arange(Distribution dist, T start = T{0}, T step = T{1}) {
    DistArray a(std::move(dist), Uninit{});
    a.fill_from_global([&](const std::vector<index_t>& g) {
      return start + static_cast<T>(g.back()) * step;
    });
    return a;
  }

  /// NumPy-style linspace over a 1D distribution (inclusive endpoints).
  static DistArray linspace(Distribution dist, T lo, T hi) {
    require<ShapeError>(dist.ndim() == 1, "linspace: needs a 1D distribution");
    const index_t n = dist.global_shape().extent(0);
    DistArray a(std::move(dist), Uninit{});
    const T step = n > 1 ? (hi - lo) / static_cast<T>(n - 1) : T{0};
    a.fill_from_global([&](const std::vector<index_t>& g) {
      return lo + static_cast<T>(g[0]) * step;
    });
    return a;
  }

  /// Deterministic uniform [0,1) fill; mirrors the paper's description of
  /// odin.rand: each node seeds its own stream from (seed, rank) and no
  /// array data crosses the wire.
  static DistArray random(Distribution dist, std::uint64_t seed = 0) {
    DistArray a(std::move(dist), Uninit{});
    util::Xoshiro256 rng(seed, static_cast<std::uint64_t>(a.dist().rank()));
    for (auto& x : a.data_) x = static_cast<T>(rng.next_double());
    return a;
  }

  /// Evaluates f(global multi-index) on every local element.
  static DistArray fromfunction(
      Distribution dist, const std::function<T(const std::vector<index_t>&)>& f) {
    DistArray a(std::move(dist), Uninit{});
    a.fill_from_global(f);
    return a;
  }

  // ---- elementwise (local, no communication when conformable) -----------

  /// In-place transform of every local element. Dispatched through the
  /// execution-space layer's SoA map kernel (the local buffer is a
  /// contiguous unit-stride scalar array, so the SIMD backend vectorizes
  /// it); above one grain of elements the selected space schedules the
  /// chunks, below it the kernel runs inline.
  template <class F>
  void transform(F&& f) {
    T* d = data_.data();
    util::exec::map(util::exec::default_space(), d, d,
                    static_cast<std::int64_t>(data_.size()),
                    util::kDefaultGrain, f);
  }

  /// New array g(this) with the same distribution (unary ufunc kernel;
  /// dispatched like transform).
  template <class F>
  DistArray map(F&& f) const {
    DistArray out = uninitialized(*dist_);
    util::exec::map(util::exec::default_space(), data_.data(),
                    out.data_.data(), static_cast<std::int64_t>(data_.size()),
                    util::kDefaultGrain, f);
    return out;
  }

  /// New array f(this, other); non-conformable operands are redistributed
  /// according to `strategy` first (collective in that case).
  template <class F>
  DistArray zip(const DistArray& other, F&& f,
                ConformStrategy strategy = ConformStrategy::kAuto) const;

  // ---- reductions (collective) ------------------------------------------

  /// Local fold then allreduce. The local fold runs as the execution-space
  /// layer's deterministic chunked reduction: chunk boundaries depend only
  /// on the grain (never the thread count or backend), each chunk folds
  /// left-to-right, and partials merge in a fixed pairwise tree — so the
  /// result is bit-identical for any thread count and any Space, and equal
  /// to the plain serial fold whenever the local part fits in one chunk.
  template <class F>
  T reduce(T init, F&& op) const {
    const T* d = data_.data();
    const auto n = static_cast<std::int64_t>(data_.size());
    T acc = init;
    if (n > 0) {
      acc = util::exec::transform_reduce(
          util::exec::default_space(), 0, n, util::kDefaultGrain, init,
          [&op, &init, d](std::int64_t lo, std::int64_t hi) {
            T a = lo == 0 ? init : d[lo];
            for (std::int64_t i = lo == 0 ? lo : lo + 1; i < hi; ++i) {
              a = op(a, d[i]);
            }
            return a;
          },
          [&op](T a, T b) { return op(std::move(a), std::move(b)); });
    }
    return dist_->comm().allreduce_value(acc, op);
  }

  T sum() const {
    return reduce(T{0}, std::plus<T>{});
  }

  // min/max/mean are undefined on a globally empty array; like
  // argmin/argmax they throw rather than returning numeric_limits
  // sentinels (or NaN). A rank whose *local* part is empty still
  // participates normally — its sentinel never wins the reduction because
  // some other rank holds real data.
  T min() const {
    require<NumericalError>(size() != 0, "min: empty array");
    const T* d = data_.data();
    const auto n = static_cast<std::int64_t>(data_.size());
    T acc = std::numeric_limits<T>::max();
    if (n > 0) {
      acc = util::exec::transform_reduce(
          util::exec::default_space(), 0, n, util::kDefaultGrain, acc,
          [d](std::int64_t lo, std::int64_t hi) {
            T a = d[lo];
            for (std::int64_t i = lo + 1; i < hi; ++i) a = std::min(a, d[i]);
            return a;
          },
          [](T a, T b) { return std::min(a, b); });
    }
    return dist_->comm().allreduce_value(
        acc, [](T a, T b) { return std::min(a, b); });
  }

  T max() const {
    require<NumericalError>(size() != 0, "max: empty array");
    const T* d = data_.data();
    const auto n = static_cast<std::int64_t>(data_.size());
    T acc = std::numeric_limits<T>::lowest();
    if (n > 0) {
      acc = util::exec::transform_reduce(
          util::exec::default_space(), 0, n, util::kDefaultGrain, acc,
          [d](std::int64_t lo, std::int64_t hi) {
            T a = d[lo];
            for (std::int64_t i = lo + 1; i < hi; ++i) a = std::max(a, d[i]);
            return a;
          },
          [](T a, T b) { return std::max(a, b); });
    }
    return dist_->comm().allreduce_value(
        acc, [](T a, T b) { return std::max(a, b); });
  }

  double mean() const {
    require<NumericalError>(size() != 0, "mean: empty array");
    return static_cast<double>(sum()) / static_cast<double>(size());
  }

  double norm2() const {
    const T* d = data_.data();
    const double acc = util::exec::transform_reduce(
        util::exec::default_space(), 0,
        static_cast<std::int64_t>(data_.size()), util::kDefaultGrain, 0.0,
        [d](std::int64_t lo, std::int64_t hi) {
          double a = 0.0;
          for (std::int64_t i = lo; i < hi; ++i) {
            a += static_cast<double>(d[i]) * static_cast<double>(d[i]);
          }
          return a;
        },
        [](double a, double b) { return a + b; });
    return std::sqrt(dist_->comm().allreduce_value(acc, std::plus<double>{}));
  }

  /// Global multi-index of the minimum value (ties: lowest global linear
  /// index). Collective.
  std::vector<index_t> argmin() const { return arg_extreme(true); }
  std::vector<index_t> argmax() const { return arg_extreme(false); }

  // ---- global element access (collective) -------------------------------

  /// Every rank receives the value at `gidx` (broadcast from the owner).
  T get_global(const std::vector<index_t>& gidx) const {
    const auto [owner, lidx] = dist_->owner_of(gidx);
    T value{};
    if (dist_->rank() == owner) {
      value = data_[static_cast<std::size_t>(lidx)];
    }
    return dist_->comm().broadcast_value(value, owner);
  }

  /// Every rank calls; the owner stores. Collective only by convention
  /// (no traffic).
  void set_global(const std::vector<index_t>& gidx, T value) {
    const auto [owner, lidx] = dist_->owner_of(gidx);
    if (dist_->rank() == owner) {
      data_[static_cast<std::size_t>(lidx)] = value;
    }
  }

  /// Replicates the full array on every rank in global row-major order
  /// (collective; test/interop helper).
  std::vector<T> gather() const {
    struct Entry {
      index_t linear;
      T value;
    };
    const auto strides = shape().strides();
    std::vector<Entry> mine;
    mine.reserve(data_.size());
    for (index_t l = 0; l < local_size(); ++l) {
      const auto gidx = dist_->global_of_local(l);
      index_t lin = 0;
      for (std::size_t a = 0; a < gidx.size(); ++a) lin += gidx[a] * strides[a];
      mine.push_back(Entry{lin, data_[static_cast<std::size_t>(l)]});
    }
    auto chunks = dist_->comm().allgatherv(std::span<const Entry>(mine));
    std::vector<T> out(static_cast<std::size_t>(size()), T{});
    for (const auto& chunk : chunks) {
      for (const auto& e : chunk) {
        out[static_cast<std::size_t>(e.linear)] = e.value;
      }
    }
    return out;
  }

 private:
  struct Uninit {};
  DistArray(Distribution dist, Uninit)
      : dist_(std::make_shared<Distribution>(std::move(dist))),
        data_(static_cast<std::size_t>(dist_->local_count())) {}

  /// Elementwise f over operands already known to be conformable.
  template <class F>
  DistArray zip_local(const DistArray& other, F&& f) const {
    DistArray out = uninitialized(*dist_);
    util::exec::zip(util::exec::default_space(), data_.data(),
                    other.data_.data(), out.data_.data(),
                    static_cast<std::int64_t>(data_.size()),
                    util::kDefaultGrain, f);
    return out;
  }

  template <class F>
  void fill_from_global(F&& f) {
    for (index_t l = 0; l < local_size(); ++l) {
      data_[static_cast<std::size_t>(l)] = f(dist_->global_of_local(l));
    }
  }

  std::vector<index_t> arg_extreme(bool want_min) const {
    struct Best {
      T value;
      index_t linear;
    };
    const auto strides = shape().strides();
    Best best{want_min ? std::numeric_limits<T>::max()
                       : std::numeric_limits<T>::lowest(),
              std::numeric_limits<index_t>::max()};
    for (index_t l = 0; l < local_size(); ++l) {
      const T v = data_[static_cast<std::size_t>(l)];
      const bool better = want_min ? v < best.value : v > best.value;
      if (better) {
        const auto gidx = dist_->global_of_local(l);
        index_t lin = 0;
        for (std::size_t a = 0; a < gidx.size(); ++a) {
          lin += gidx[a] * strides[a];
        }
        best = Best{v, lin};
      }
    }
    auto all = dist_->comm().allgather_value(best);
    Best global = all.front();
    for (const auto& b : all) {
      const bool better =
          want_min ? (b.value < global.value ||
                      (b.value == global.value && b.linear < global.linear))
                   : (b.value > global.value ||
                      (b.value == global.value && b.linear < global.linear));
      if (better) global = b;
    }
    require<NumericalError>(global.linear != std::numeric_limits<index_t>::max(),
                            "argmin/argmax: empty array");
    return shape().delinearize(global.linear);
  }

  template <class U>
  friend DistArray<U> redistribute(const DistArray<U>& a,
                                   const Distribution& target);

  std::shared_ptr<Distribution> dist_;
  // DefaultInitAllocator so the Uninit path can skip the zero-fill; the
  // public constructors pass an explicit fill value and are unaffected.
  std::vector<T, util::DefaultInitAllocator<T>> data_;
};

/// Moves an array onto a new distribution of the same global shape
/// (collective alltoallv; ships (global linear index, value) pairs).
template <class T>
DistArray<T> redistribute(const DistArray<T>& a, const Distribution& target) {
  require<ShapeError>(a.shape() == target.global_shape(),
                      "redistribute: global shapes differ");
  auto& comm = a.dist().comm();
  const int p = comm.size();

  obs::Span span("redistribute", "odin");
  if (span.active()) {
    span.arg("elements", static_cast<std::int64_t>(a.size()));
    span.arg("bytes", static_cast<std::int64_t>(
                          static_cast<std::size_t>(a.local_size()) * sizeof(T)));
  }

  struct Entry {
    index_t local_at_target;
    T value;
  };
  std::vector<std::vector<Entry>> outgoing(static_cast<std::size_t>(p));
  for (index_t l = 0; l < a.local_size(); ++l) {
    const auto gidx = a.dist().global_of_local(l);
    // Only the canonical replica sends (a replicated source holds every
    // element on every rank — without this, p copies race to the target);
    // and each element goes to every target replica, not just the
    // canonical one (a replicated target stores a copy per rank).
    if (a.dist().owner_of(gidx).first != comm.rank()) continue;
    for (const auto& [owner, lidx] : target.owners_of(gidx)) {
      outgoing[static_cast<std::size_t>(owner)].push_back(
          Entry{lidx, a.local_view()[static_cast<std::size_t>(l)]});
    }
  }
  auto incoming = comm.alltoallv(outgoing);

  DistArray<T> out(target);
  auto view = out.local_view();
  for (const auto& part : incoming) {
    for (const auto& e : part) {
      view[static_cast<std::size_t>(e.local_at_target)] = e.value;
    }
  }
  return out;
}

/// Estimated communication cost (elements leaving their rank) of moving
/// `a` onto `target`. Collective. Used by the kAuto conform strategy —
/// the paper's "expression analysis to select the appropriate
/// communication strategy".
template <class T>
index_t redistribution_cost(const DistArray<T>& a, const Distribution& target) {
  index_t moving = 0;
  for (index_t l = 0; l < a.local_size(); ++l) {
    const auto gidx = a.dist().global_of_local(l);
    if (a.dist().owner_of(gidx).first != a.dist().rank()) continue;
    for (const auto& [owner, lidx] : target.owners_of(gidx)) {
      if (owner != a.dist().rank()) ++moving;
    }
  }
  return a.dist().comm().allreduce_value(moving, std::plus<index_t>{});
}

template <class T>
template <class F>
DistArray<T> DistArray<T>::zip(const DistArray& other, F&& f,
                               ConformStrategy strategy) const {
  require<ShapeError>(shape() == other.shape(),
                      util::cat("zip: shapes differ: ", shape().to_string(),
                                " vs ", other.shape().to_string()));
  if (dist_->conformable(other.dist())) return zip_local(other, f);
  // Non-conformable: align layouts first.
  switch (strategy) {
    case ConformStrategy::kRight:
      return zip_local(redistribute(other, *dist_), f);
    case ConformStrategy::kLeft:
      return redistribute(*this, other.dist()).zip_local(other, f);
    case ConformStrategy::kAuto: {
      // One fused local pass measures both directions, and a single
      // two-element allreduce replaces the two collective
      // redistribution_cost passes the old path ran; the chosen operand is
      // then redistributed directly instead of recursively re-entering zip
      // (which re-checked shape and conformability for nothing). Net: 3
      // collective entries per rank instead of 5.
      obs::Span span("zip.auto_conform", "odin");
      index_t local[2] = {0, 0};  // elements leaving their rank: [this, other]
      for (index_t l = 0; l < local_size(); ++l) {
        const auto gidx = dist_->global_of_local(l);
        if (other.dist().owner_of(gidx).first != dist_->rank()) ++local[0];
      }
      for (index_t l = 0; l < other.local_size(); ++l) {
        const auto gidx = other.dist_->global_of_local(l);
        if (dist_->owner_of(gidx).first != other.dist().rank()) ++local[1];
      }
      index_t costs[2] = {0, 0};
      dist_->comm().allreduce(std::span<const index_t>(local, 2),
                              std::span<index_t>(costs, 2),
                              std::plus<index_t>{});
      const bool move_right = costs[1] <= costs[0];  // same tie-break as before
      if (span.active()) {
        span.arg("cost_left", static_cast<std::int64_t>(costs[0]));
        span.arg("cost_right", static_cast<std::int64_t>(costs[1]));
        span.arg("chosen", move_right ? "right" : "left");
      }
      if (move_right) return zip_local(redistribute(other, *dist_), f);
      return redistribute(*this, other.dist()).zip_local(other, f);
    }
  }
  throw InvalidArgument("zip: unknown conform strategy");
}

// ---- operator sugar (NumPy-feel arithmetic) ------------------------------

template <class T>
DistArray<T> operator+(const DistArray<T>& a, const DistArray<T>& b) {
  return a.zip(b, std::plus<T>{}, default_conform_strategy());
}
template <class T>
DistArray<T> operator-(const DistArray<T>& a, const DistArray<T>& b) {
  return a.zip(b, std::minus<T>{}, default_conform_strategy());
}
template <class T>
DistArray<T> operator*(const DistArray<T>& a, const DistArray<T>& b) {
  return a.zip(b, std::multiplies<T>{}, default_conform_strategy());
}
template <class T>
DistArray<T> operator/(const DistArray<T>& a, const DistArray<T>& b) {
  return a.zip(b, std::divides<T>{}, default_conform_strategy());
}
template <class T>
DistArray<T> operator+(const DistArray<T>& a, T s) {
  return a.map([s](T x) { return x + s; });
}
template <class T>
DistArray<T> operator-(const DistArray<T>& a, T s) {
  return a.map([s](T x) { return x - s; });
}
template <class T>
DistArray<T> operator*(const DistArray<T>& a, T s) {
  return a.map([s](T x) { return x * s; });
}
template <class T>
DistArray<T> operator/(const DistArray<T>& a, T s) {
  return a.map([s](T x) { return x / s; });
}
template <class T>
DistArray<T> operator*(T s, const DistArray<T>& a) {
  return a * s;
}

}  // namespace pyhpc::odin
