// Lazy distributed array expressions with loop fusion (§III: "With the
// power and expressiveness of NumPy array slicing, ODIN can optimize
// distributed array expressions. These optimizations include: loop
// fusion, ...").
//
// Eager NumPy semantics allocate one temporary per operation; the lazy
// layer builds an expression tree of references and evaluates the whole
// tree in a single pass per local element at eval() time — zero
// temporaries, one loop. Bench E10 is the ablation (eager vs fused).
//
// Operands must be conformable; eval() verifies and throws ShapeError
// otherwise (conforming inside a fused loop would hide communication —
// redistribute explicitly first).
#pragma once

#include <type_traits>

#include "odin/dist_array.hpp"

namespace pyhpc::odin {

namespace detail {

/// Leaf referencing an existing array (no copy).
template <class T>
struct LeafExpr {
  const DistArray<T>* array;

  using value_type = T;
  T at(index_t i) const {
    return array->local_view()[static_cast<std::size_t>(i)];
  }
  const Distribution* dist() const { return &array->dist(); }
  bool conformable_with(const Distribution& d) const {
    return array->dist().conformable(d);
  }
};

/// Broadcast scalar.
template <class T>
struct ScalarExpr {
  T value;

  using value_type = T;
  T at(index_t) const { return value; }
  const Distribution* dist() const { return nullptr; }
  bool conformable_with(const Distribution&) const { return true; }
};

template <class F, class A>
struct UnaryExpr {
  F fn;
  A a;

  using value_type = typename A::value_type;
  value_type at(index_t i) const { return fn(a.at(i)); }
  const Distribution* dist() const { return a.dist(); }
  bool conformable_with(const Distribution& d) const {
    return a.conformable_with(d);
  }
};

template <class F, class A, class B>
struct BinaryExpr {
  F fn;
  A a;
  B b;

  // common_type, not A's type alone: `constant(2) * lazy(x)` with double x
  // must evaluate as double, regardless of which operand holds the scalar.
  using value_type =
      std::common_type_t<typename A::value_type, typename B::value_type>;
  value_type at(index_t i) const { return fn(a.at(i), b.at(i)); }
  const Distribution* dist() const {
    const Distribution* d = a.dist();
    return d != nullptr ? d : b.dist();
  }
  bool conformable_with(const Distribution& d) const {
    return a.conformable_with(d) && b.conformable_with(d);
  }
};

template <class E>
inline constexpr bool is_expr_v = false;
template <class T>
inline constexpr bool is_expr_v<LeafExpr<T>> = true;
template <class T>
inline constexpr bool is_expr_v<ScalarExpr<T>> = true;
template <class F, class A>
inline constexpr bool is_expr_v<UnaryExpr<F, A>> = true;
template <class F, class A, class B>
inline constexpr bool is_expr_v<BinaryExpr<F, A, B>> = true;

}  // namespace detail

/// Wraps an array for lazy composition: odin::lazy(x) * 2.0 + odin::lazy(y).
template <class T>
detail::LeafExpr<T> lazy(const DistArray<T>& a) {
  return detail::LeafExpr<T>{&a};
}

template <class T>
detail::ScalarExpr<T> constant(T v) {
  return detail::ScalarExpr<T>{v};
}

// ---- combinators -----------------------------------------------------------

template <class F, class A,
          class = std::enable_if_t<detail::is_expr_v<A>>>
auto apply_unary(F fn, A a) {
  return detail::UnaryExpr<F, A>{fn, a};
}

template <class F, class A, class B,
          class = std::enable_if_t<detail::is_expr_v<A> && detail::is_expr_v<B>>>
auto apply_binary(F fn, A a, B b) {
  return detail::BinaryExpr<F, A, B>{fn, a, b};
}

namespace detail {

template <class A, class B,
          class = std::enable_if_t<is_expr_v<A> && is_expr_v<B>>>
auto operator+(A a, B b) {
  using T = std::common_type_t<typename A::value_type, typename B::value_type>;
  return pyhpc::odin::apply_binary(std::plus<T>{}, a, b);
}
template <class A, class B,
          class = std::enable_if_t<is_expr_v<A> && is_expr_v<B>>>
auto operator-(A a, B b) {
  using T = std::common_type_t<typename A::value_type, typename B::value_type>;
  return pyhpc::odin::apply_binary(std::minus<T>{}, a, b);
}
template <class A, class B,
          class = std::enable_if_t<is_expr_v<A> && is_expr_v<B>>>
auto operator*(A a, B b) {
  using T = std::common_type_t<typename A::value_type, typename B::value_type>;
  return pyhpc::odin::apply_binary(std::multiplies<T>{}, a, b);
}
template <class A, class B,
          class = std::enable_if_t<is_expr_v<A> && is_expr_v<B>>>
auto operator/(A a, B b) {
  using T = std::common_type_t<typename A::value_type, typename B::value_type>;
  return pyhpc::odin::apply_binary(std::divides<T>{}, a, b);
}

// Scalar/expr mixed operators — the full set, in both orders. The scalar
// parameter is `typename A::value_type` (a non-deduced context), so plain
// literals convert: `2.0 + lazy(x)` and `lazy(x) / 2` both work. The
// non-commutative ops keep the operand order in the functor.
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator*(A a, typename A::value_type s) {
  return pyhpc::odin::apply_binary(std::multiplies<typename A::value_type>{}, a,
                      pyhpc::odin::constant(s));
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator*(typename A::value_type s, A a) {
  return a * s;
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator+(A a, typename A::value_type s) {
  return pyhpc::odin::apply_binary(std::plus<typename A::value_type>{}, a, pyhpc::odin::constant(s));
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator+(typename A::value_type s, A a) {
  return a + s;
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator-(A a, typename A::value_type s) {
  return pyhpc::odin::apply_binary(std::minus<typename A::value_type>{}, a,
                      pyhpc::odin::constant(s));
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator-(typename A::value_type s, A a) {
  return pyhpc::odin::apply_binary(std::minus<typename A::value_type>{},
                      pyhpc::odin::constant(s), a);
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator/(A a, typename A::value_type s) {
  return pyhpc::odin::apply_binary(std::divides<typename A::value_type>{}, a,
                      pyhpc::odin::constant(s));
}
template <class A, class = std::enable_if_t<is_expr_v<A>>>
auto operator/(typename A::value_type s, A a) {
  return pyhpc::odin::apply_binary(std::divides<typename A::value_type>{},
                      pyhpc::odin::constant(s), a);
}

}  // namespace detail

/// Evaluates the whole tree in one fused pass over the local elements —
/// dispatched through the execution-space layer when the local part
/// exceeds one grain. The body is an element body (`dst[i] = expr.at(i)`,
/// pure inlined leaf-load arithmetic), so the SIMD backend vectorizes the
/// entire fused expression in one pass. Collective only in that every
/// rank must call it (no traffic).
template <class E, class = std::enable_if_t<detail::is_expr_v<E>>>
DistArray<typename E::value_type> eval(const E& expr) {
  using T = typename E::value_type;
  const Distribution* dist = expr.dist();
  require<ShapeError>(dist != nullptr,
                      "eval: expression references no array (all scalars)");
  require<ShapeError>(expr.conformable_with(*dist),
                      "eval: operands are not conformable; redistribute "
                      "before fusing");
  auto out = DistArray<T>::uninitialized(*dist);
  T* dst = out.local_view().data();
  util::exec::for_each(util::exec::default_space(), 0,
                       static_cast<std::int64_t>(out.local_view().size()),
                       util::kDefaultGrain, [&expr, dst](std::int64_t i) noexcept {
                         dst[i] = expr.at(static_cast<index_t>(i));
                       });
  return out;
}

// ---- fused reductions ------------------------------------------------------
//
// Reduce an expression tree without materializing it: one fused pass per
// chunk, deterministic grain-based chunking (bit-identical across thread
// counts, see util::TaskPool), then one allreduce. Same empty-array
// semantics as the DistArray reductions: min/max/mean on a globally empty
// expression throw NumericalError.

namespace detail {

/// The expression's anchoring distribution, validated exactly like eval().
template <class E>
const Distribution& reduce_dist(const E& expr, const char* what) {
  const Distribution* dist = expr.dist();
  require<ShapeError>(dist != nullptr,
                      util::cat(what,
                                ": expression references no array (all "
                                "scalars)"));
  require<ShapeError>(expr.conformable_with(*dist),
                      util::cat(what,
                                ": operands are not conformable; "
                                "redistribute before fusing"));
  return *dist;
}

}  // namespace detail

template <class E, class = std::enable_if_t<detail::is_expr_v<E>>>
typename E::value_type sum(const E& expr) {
  using T = typename E::value_type;
  const Distribution& dist = detail::reduce_dist(expr, "sum");
  const T acc = util::exec::transform_reduce(
      util::exec::default_space(), 0,
      static_cast<std::int64_t>(dist.local_count()), util::kDefaultGrain,
      T{0},
      [&expr](std::int64_t lo, std::int64_t hi) {
        T a{0};
        for (std::int64_t i = lo; i < hi; ++i) {
          a += expr.at(static_cast<index_t>(i));
        }
        return a;
      },
      [](T a, T b) { return a + b; });
  return dist.comm().allreduce_value(acc, std::plus<T>{});
}

template <class E, class = std::enable_if_t<detail::is_expr_v<E>>>
typename E::value_type min(const E& expr) {
  using T = typename E::value_type;
  const Distribution& dist = detail::reduce_dist(expr, "min");
  require<NumericalError>(dist.global_shape().count() != 0,
                          "min: empty expression");
  const std::int64_t n = static_cast<std::int64_t>(dist.local_count());
  T acc = std::numeric_limits<T>::max();  // locally-empty rank: never wins
  if (n > 0) {
    acc = util::exec::transform_reduce(
        util::exec::default_space(), 0, n, util::kDefaultGrain, acc,
        [&expr](std::int64_t lo, std::int64_t hi) {
          T a = expr.at(static_cast<index_t>(lo));
          for (std::int64_t i = lo + 1; i < hi; ++i) {
            a = std::min(a, expr.at(static_cast<index_t>(i)));
          }
          return a;
        },
        [](T a, T b) { return std::min(a, b); });
  }
  return dist.comm().allreduce_value(acc,
                                     [](T a, T b) { return std::min(a, b); });
}

template <class E, class = std::enable_if_t<detail::is_expr_v<E>>>
typename E::value_type max(const E& expr) {
  using T = typename E::value_type;
  const Distribution& dist = detail::reduce_dist(expr, "max");
  require<NumericalError>(dist.global_shape().count() != 0,
                          "max: empty expression");
  const std::int64_t n = static_cast<std::int64_t>(dist.local_count());
  T acc = std::numeric_limits<T>::lowest();
  if (n > 0) {
    acc = util::exec::transform_reduce(
        util::exec::default_space(), 0, n, util::kDefaultGrain, acc,
        [&expr](std::int64_t lo, std::int64_t hi) {
          T a = expr.at(static_cast<index_t>(lo));
          for (std::int64_t i = lo + 1; i < hi; ++i) {
            a = std::max(a, expr.at(static_cast<index_t>(i)));
          }
          return a;
        },
        [](T a, T b) { return std::max(a, b); });
  }
  return dist.comm().allreduce_value(acc,
                                     [](T a, T b) { return std::max(a, b); });
}

template <class E, class = std::enable_if_t<detail::is_expr_v<E>>>
double mean(const E& expr) {
  const Distribution& dist = detail::reduce_dist(expr, "mean");
  const index_t count = dist.global_shape().count();
  require<NumericalError>(count != 0, "mean: empty expression");
  return static_cast<double>(sum(expr)) / static_cast<double>(count);
}

}  // namespace pyhpc::odin
