// Distributed file IO (§III.H: "ODIN, being compatible with MPI, can make
// use of MPI's distributed IO routines. For custom formats, access to
// node-level computations allows full control to read or write any
// arbitrary distributed file format").
//
// Format: a fixed 32-byte header (magic, element size, ndim, extents...)
// followed by the elements in global row-major order. Each rank writes and
// reads only its own elements at their absolute offsets via pread/pwrite —
// the MPI-IO "file view" pattern.
#pragma once

#include <string>

#include "odin/dist_array.hpp"

namespace pyhpc::odin {

/// Writes a distributed double array; collective (rank 0 writes the
/// header, everyone writes its elements in place).
void write_distributed(const DistArray<double>& a, const std::string& path);

/// Reads a distributed double array under the given distribution; the
/// stored shape must match. Collective.
DistArray<double> read_distributed(const Distribution& dist,
                                   const std::string& path);

/// Reads just the stored shape (rank 0 reads, broadcast). Collective.
Shape read_stored_shape(comm::Communicator& comm, const std::string& path);

}  // namespace pyhpc::odin
