// Axis reductions over distributed arrays: the NumPy a.sum(axis=k) family
// (the paper's ODIN is a "distributed NumPy"; whole-array reductions live
// on DistArray, these remove one axis).
//
// One implementation covers every distribution scheme: each rank folds its
// local elements into per-output partials, partials are routed to the
// owner of each output cell under the result's block distribution
// (alltoallv), and owners fold incoming partials. Communication is
// O(#output cells touched per rank), never O(input).
#pragma once

#include <unordered_map>

#include "odin/dist_array.hpp"

namespace pyhpc::odin {

/// Reduces `a` along `axis` with a binary op (must be associative and
/// commutative; `init` is its identity). The result has the input shape
/// minus that axis and is block-distributed over its first axis (or a
/// single replicated cell for full reduction of 1D inputs). Collective.
template <class T, class Op>
DistArray<T> reduce_axis(const DistArray<T>& a, int axis, Op op, T init) {
  require<ShapeError>(axis >= 0 && axis < a.ndim(),
                      "reduce_axis: axis out of range");
  require<ShapeError>(a.ndim() >= 1, "reduce_axis: needs at least 1 axis");
  const Shape& in_shape = a.shape();

  // Output shape: input minus the reduced axis (rank-0 becomes shape {1}).
  std::vector<index_t> out_dims;
  for (int d = 0; d < a.ndim(); ++d) {
    if (d != axis) out_dims.push_back(in_shape.extent(d));
  }
  if (out_dims.empty()) out_dims.push_back(1);
  Shape out_shape(out_dims);
  auto& comm = a.dist().comm();
  Distribution out_dist = Distribution::block(comm, out_shape, 0);

  // Local fold into per-output partials (keyed by output linear index).
  // Threaded as a map-merging reduction: each chunk of local indices folds
  // into its own map, maps merge pairwise with `op`. op is associative and
  // commutative by contract and `init` is its identity, so the merged
  // values are independent of the chunking.
  const auto out_strides = out_shape.strides();
  using PartialMap = std::unordered_map<index_t, T>;
  // General (chunk-fold) path through the execution-space layer: each
  // element needs global_of_local index translation, so the SoA fast path
  // does not apply (DESIGN.md §11) and SIMD spaces run it scalar.
  PartialMap partials = util::exec::transform_reduce(
      util::exec::default_space(), 0,
      static_cast<std::int64_t>(a.local_size()), util::kDefaultGrain,
      PartialMap{},
      [&](std::int64_t lo, std::int64_t hi) {
        PartialMap m;
        for (std::int64_t l = lo; l < hi; ++l) {
          const auto gidx = a.dist().global_of_local(static_cast<index_t>(l));
          index_t out_linear = 0;
          int k = 0;
          if (a.ndim() == 1) {
            out_linear = 0;  // full reduction of a 1D array -> single cell
          } else {
            for (int d = 0; d < a.ndim(); ++d) {
              if (d == axis) continue;
              out_linear += gidx[static_cast<std::size_t>(d)] *
                            out_strides[static_cast<std::size_t>(k)];
              ++k;
            }
          }
          auto [it, inserted] = m.emplace(out_linear, init);
          it->second =
              op(it->second, a.local_view()[static_cast<std::size_t>(l)]);
        }
        return m;
      },
      [&op](PartialMap x, PartialMap y) {
        for (auto& [key, value] : y) {
          auto [it, inserted] = x.emplace(key, value);
          if (!inserted) it->second = op(it->second, value);
        }
        return x;
      });

  // Route partials to the owner of each output cell.
  struct Partial {
    index_t out_local;
    T value;
  };
  const int p = comm.size();
  std::vector<std::vector<Partial>> outgoing(static_cast<std::size_t>(p));
  for (const auto& [out_linear, value] : partials) {
    const auto out_gidx = out_shape.delinearize(out_linear);
    const auto [owner, lidx] = out_dist.owner_of(out_gidx);
    outgoing[static_cast<std::size_t>(owner)].push_back(Partial{lidx, value});
  }
  auto incoming = comm.alltoallv(outgoing);

  DistArray<T> out(out_dist, init);
  auto view = out.local_view();
  for (const auto& part : incoming) {
    for (const auto& contrib : part) {
      auto& slot = view[static_cast<std::size_t>(contrib.out_local)];
      slot = op(slot, contrib.value);
    }
  }
  return out;
}

template <class T>
DistArray<T> sum_axis(const DistArray<T>& a, int axis) {
  return reduce_axis(a, axis, std::plus<T>{}, T{0});
}

template <class T>
DistArray<T> min_axis(const DistArray<T>& a, int axis) {
  return reduce_axis(
      a, axis, [](T x, T y) { return std::min(x, y); },
      std::numeric_limits<T>::max());
}

template <class T>
DistArray<T> max_axis(const DistArray<T>& a, int axis) {
  return reduce_axis(
      a, axis, [](T x, T y) { return std::max(x, y); },
      std::numeric_limits<T>::lowest());
}

/// Arithmetic mean along an axis (computed as sum / extent).
inline DistArray<double> mean_axis(const DistArray<double>& a, int axis) {
  const auto n = static_cast<double>(a.shape().extent(axis));
  auto s = sum_axis(a, axis);
  s.transform([n](double v) { return v / n; });
  return s;
}

}  // namespace pyhpc::odin
