#include "odin/ufunc.hpp"

namespace pyhpc::odin {

UfuncRegistry& UfuncRegistry::builtin() {
  static UfuncRegistry reg = [] {
    UfuncRegistry r;
    r.register_unary("sin", [](double x) { return std::sin(x); });
    r.register_unary("cos", [](double x) { return std::cos(x); });
    r.register_unary("sqrt", [](double x) { return std::sqrt(x); });
    r.register_unary("exp", [](double x) { return std::exp(x); });
    r.register_unary("log", [](double x) { return std::log(x); });
    r.register_unary("abs", [](double x) { return std::abs(x); });
    r.register_unary("square", [](double x) { return x * x; });
    r.register_unary("neg", [](double x) { return -x; });
    r.register_binary("add", [](double x, double y) { return x + y; });
    r.register_binary("sub", [](double x, double y) { return x - y; });
    r.register_binary("mul", [](double x, double y) { return x * y; });
    r.register_binary("div", [](double x, double y) { return x / y; });
    // Same sqrt(x^2 + y^2) formulation as od::hypot so the registry entry
    // and the direct ufunc agree bit-for-bit.
    r.register_binary("hypot",
                      [](double x, double y) { return std::sqrt(x * x + y * y); });
    r.register_binary("pow", [](double x, double y) { return std::pow(x, y); });
    r.register_binary("min", [](double x, double y) { return std::min(x, y); });
    r.register_binary("max", [](double x, double y) { return std::max(x, y); });
    return r;
  }();
  return reg;
}

}  // namespace pyhpc::odin
