#include "odin/local.hpp"

namespace pyhpc::odin {

LocalRegistry& LocalRegistry::instance() {
  static LocalRegistry registry;
  return registry;
}

void LocalRegistry::register_function(const std::string& name,
                                      LocalFunction fn) {
  std::lock_guard<std::mutex> lock(mu_);
  fns_[name] = std::move(fn);
}

bool LocalRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fns_.count(name) > 0;
}

LocalFunction LocalRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fns_.find(name);
  require(it != fns_.end(), "LocalRegistry: no local function '" + name + "'");
  return it->second;
}

std::vector<std::string> LocalRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(fns_.size());
  for (const auto& [k, v] : fns_) out.push_back(k);
  return out;
}

void LocalRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  fns_.clear();
}

}  // namespace pyhpc::odin
