// Explicit driver/worker execution mode — the architecture of the paper's
// Figure 1: "The end user interacts with the ODIN Process, which determines
// what allocations and calculations to run on the worker nodes ... All
// array data is allocated and initialized on each node; the only
// communication from the top-level node is a short message, at most tens of
// bytes. For efficiency, several messages can be buffered and sent at once".
//
// Rank 0 is the ODIN process (driver); ranks 1..P-1 run worker_loop().
// Every operation is one fixed-size ControlMessage (40 bytes) per worker;
// batching queues messages and ships them as one payload. The SPMD global
// mode elsewhere in the library derives each op descriptor locally instead
// of shipping it — bench_fig1 measures the difference (including the
// driver-bottleneck effect the paper warns about).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "util/error.hpp"

namespace pyhpc::odin {

/// Fixed-size control message ("at most tens of bytes").
struct ControlMessage {
  enum class Op : std::int32_t {
    kCreateRandom = 1,
    kCreateFull = 2,
    kUnary = 3,
    kBinary = 4,
    kReduceSum = 5,
    kAxpy = 6,   // result = scalar * arg0 + arg1
    kFree = 7,
    kShutdown = 8,
  };

  Op op = Op::kShutdown;
  std::int32_t result_id = -1;
  std::int32_t arg0 = -1;
  std::int32_t arg1 = -1;
  std::int64_t n = 0;     // global element count for creations
  double scalar = 0.0;    // fill value / seed / axpy coefficient
  char name[8] = {0};     // ufunc name for kUnary/kBinary

  void set_name(const std::string& s) {
    require(s.size() < sizeof(name), "ControlMessage: ufunc name too long");
    std::memset(name, 0, sizeof(name));
    std::memcpy(name, s.data(), s.size());
  }
  std::string get_name() const { return std::string(name); }
};
static_assert(sizeof(ControlMessage) <= 48,
              "control messages must stay at tens of bytes");

/// Driver-side API (valid on rank 0) plus the worker loop (ranks > 0).
class DriverContext {
 public:
  explicit DriverContext(comm::Communicator& comm);

  bool is_driver() const { return comm_->rank() == 0; }
  int num_workers() const { return comm_->size() - 1; }

  /// Workers block here executing control messages until kShutdown.
  void worker_loop();

  // ---- driver-side operations (each ships one message per worker) -------

  /// New distributed array of n uniform [0,1) values; returns its id.
  int create_random(std::int64_t n, std::uint64_t seed);
  int create_full(std::int64_t n, double value);
  int unary(const std::string& ufunc, int a);
  int binary(const std::string& ufunc, int a, int b);
  int axpy(double alpha, int x, int y);
  void free_array(int id);
  /// Sum-reduce: workers reply with partials the driver folds.
  double reduce_sum(int a);
  void shutdown();

  // ---- message batching (the paper's buffering optimization) ------------

  /// Between begin_batch and flush_batch, messages queue locally and ship
  /// as one payload per worker at flush (or at the next reduce/shutdown).
  void begin_batch();
  void flush_batch();
  bool batching() const { return batching_; }

  /// Driver-side count of control messages and bytes shipped (for F1).
  std::uint64_t control_messages_sent() const { return messages_; }
  std::uint64_t control_bytes_sent() const { return bytes_; }
  std::uint64_t payloads_sent() const { return payloads_; }

 private:
  void post(const ControlMessage& msg);
  void send_payload(int worker, const std::vector<ControlMessage>& batch);
  int fresh_id() { return next_id_++; }

  // Worker-side helpers.
  void execute(const ControlMessage& msg, bool& running);
  std::int64_t local_count(std::int64_t n) const;
  std::int64_t local_offset(std::int64_t n) const;

  comm::Communicator* comm_;
  int next_id_ = 1;
  bool batching_ = false;
  std::vector<ControlMessage> queue_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t payloads_ = 0;
  // Worker-side storage: array id -> local segment.
  std::map<int, std::vector<double>> segments_;
};

}  // namespace pyhpc::odin
