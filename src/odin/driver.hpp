// Explicit driver/worker execution mode — the architecture of the paper's
// Figure 1: "The end user interacts with the ODIN Process, which determines
// what allocations and calculations to run on the worker nodes ... All
// array data is allocated and initialized on each node; the only
// communication from the top-level node is a short message, at most tens of
// bytes. For efficiency, several messages can be buffered and sent at once".
//
// Rank 0 is the ODIN process (driver); ranks 1..P-1 run worker_loop().
// Every operation is one fixed-size ControlMessage (40 bytes) per worker;
// batching queues messages and ships them as one payload. The SPMD global
// mode elsewhere in the library derives each op descriptor locally instead
// of shipping it — bench_fig1 measures the difference (including the
// driver-bottleneck effect the paper warns about).
//
// Reliability: control payloads carry a monotone sequence number. In
// reliable mode (DriverOptions) workers acknowledge each payload after
// executing it; the driver retries unacknowledged payloads (bounded), and
// workers deduplicate retransmissions/injected duplicates by sequence
// number. A worker that dies (fault injection) surfaces as WorkerLostError
// naming the dead rank — reduce_sum and shutdown degrade gracefully
// instead of deadlocking. See DESIGN.md "Failure model and fault
// injection".
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "util/error.hpp"

namespace pyhpc::odin {

/// Tags of the driver/worker control plane (public so fault-injection
/// rules can target them).
inline constexpr int kControlTag = 9001;  // driver -> worker payloads
inline constexpr int kReplyTag = 9002;    // worker -> driver reduce partials
inline constexpr int kAckTag = 9003;      // worker -> driver payload acks

/// Fixed-size control message ("at most tens of bytes").
struct ControlMessage {
  enum class Op : std::int32_t {
    kCreateRandom = 1,
    kCreateFull = 2,
    kUnary = 3,
    kBinary = 4,
    kReduceSum = 5,
    kAxpy = 6,   // result = scalar * arg0 + arg1
    kFree = 7,
    kShutdown = 8,
  };

  Op op = Op::kShutdown;
  std::int32_t result_id = -1;
  std::int32_t arg0 = -1;
  std::int32_t arg1 = -1;
  std::int64_t n = 0;     // global element count for creations
  double scalar = 0.0;    // fill value / seed / axpy coefficient
  char name[8] = {0};     // ufunc name for kUnary/kBinary

  void set_name(const std::string& s) {
    require(s.size() < sizeof(name), "ControlMessage: ufunc name too long");
    std::memset(name, 0, sizeof(name));
    std::memcpy(name, s.data(), s.size());
  }
  std::string get_name() const { return std::string(name); }
};
static_assert(sizeof(ControlMessage) <= 48,
              "control messages must stay at tens of bytes");

/// Reliability policy for the control plane.
struct DriverOptions {
  /// Acks + bounded retransmission + duplicate suppression. The legacy
  /// DriverContext(comm) constructor turns this off (fire-and-forget, the
  /// paper's minimal protocol).
  bool reliable = true;
  /// How long the driver waits for a payload ack before retransmitting.
  std::chrono::milliseconds ack_timeout{250};
  /// Retransmissions per payload before giving up with CommError.
  int max_retries = 8;
  /// Deadline for a worker's reduce partial (covers compute time).
  std::chrono::milliseconds reply_timeout{5000};
};

/// Driver-side API (valid on rank 0) plus the worker loop (ranks > 0).
class DriverContext {
 public:
  /// Legacy fire-and-forget control plane (no acks, no retries).
  explicit DriverContext(comm::Communicator& comm);
  /// Hardened control plane; all ranks must construct with equal options.
  DriverContext(comm::Communicator& comm, const DriverOptions& options);

  bool is_driver() const { return comm_->rank() == 0; }
  int num_workers() const { return comm_->size() - 1; }

  /// Workers block here executing control messages until kShutdown.
  /// Corrupted payloads (CommIntegrityError) are discarded like a NIC
  /// dropping a bad-CRC frame; in reliable mode the missing ack makes the
  /// driver retransmit.
  void worker_loop();

  // ---- driver-side operations (each ships one message per worker) -------

  /// New distributed array of n uniform [0,1) values; returns its id.
  int create_random(std::int64_t n, std::uint64_t seed);
  int create_full(std::int64_t n, double value);
  int unary(const std::string& ufunc, int a);
  int binary(const std::string& ufunc, int a, int b);
  int axpy(double alpha, int x, int y);
  void free_array(int id);
  /// Sum-reduce: workers reply with partials the driver folds. Raises
  /// WorkerLostError naming the rank when a worker has died.
  double reduce_sum(int a);
  /// Delivers shutdown to every live worker, then raises WorkerLostError
  /// (naming the first dead rank) if any worker died along the way.
  void shutdown();

  // ---- message batching (the paper's buffering optimization) ------------

  /// Between begin_batch and flush_batch, messages queue locally and ship
  /// as one payload per worker at flush (or at the next reduce/shutdown).
  void begin_batch();
  void flush_batch();
  bool batching() const { return batching_; }

  /// Driver-side count of control messages and bytes shipped (for F1).
  /// Counts logical ControlMessage traffic; retransmissions count again,
  /// the 8-byte sequence framing does not.
  std::uint64_t control_messages_sent() const { return messages_; }
  std::uint64_t control_bytes_sent() const { return bytes_; }
  std::uint64_t payloads_sent() const { return payloads_; }

 private:
  void post(const ControlMessage& msg);
  void ship(const std::vector<ControlMessage>& batch);
  void send_payload(int worker, const std::vector<ControlMessage>& batch,
                    std::uint64_t seq);
  void await_ack_or_retry(int worker,
                          const std::vector<ControlMessage>& batch,
                          std::uint64_t seq);
  [[noreturn]] void raise_worker_lost(int worker, const char* during) const;
  int fresh_id() { return next_id_++; }

  // Worker-side helpers.
  void execute(const ControlMessage& msg, bool& running);
  std::int64_t local_count(std::int64_t n) const;
  std::int64_t local_offset(std::int64_t n) const;

  comm::Communicator* comm_;
  DriverOptions opts_;
  int next_id_ = 1;
  bool batching_ = false;
  std::vector<ControlMessage> queue_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t payloads_ = 0;
  std::uint64_t seq_ = 0;       // driver: last payload sequence issued
  std::uint64_t last_seq_ = 0;  // worker: last payload sequence executed
  // Worker-side storage: array id -> local segment.
  std::map<int, std::vector<double>> segments_;
};

}  // namespace pyhpc::odin
