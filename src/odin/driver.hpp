// Explicit driver/worker execution mode — the architecture of the paper's
// Figure 1: "The end user interacts with the ODIN Process, which determines
// what allocations and calculations to run on the worker nodes ... All
// array data is allocated and initialized on each node; the only
// communication from the top-level node is a short message, at most tens of
// bytes. For efficiency, several messages can be buffered and sent at once".
//
// Rank 0 is the ODIN process (driver); ranks 1..P-1 run worker_loop().
// Every operation is one fixed-size ControlMessage (48 bytes) per worker;
// batching queues messages and ships them as one payload. The SPMD global
// mode elsewhere in the library derives each op descriptor locally instead
// of shipping it — bench_fig1 measures the difference (including the
// driver-bottleneck effect the paper warns about).
//
// Reliability: control payloads carry an (epoch, sequence) pair. In
// reliable mode (DriverOptions) workers acknowledge each payload after
// executing it; the driver retries unacknowledged payloads (bounded), and
// workers deduplicate retransmissions/injected duplicates by sequence
// number *within the driver epoch* — payloads and acks from a different
// epoch (an earlier DriverContext over the same comm, e.g. before a
// shrink/recovery) are discarded instead of poisoning the fresh protocol
// state. A worker that dies (fault injection) surfaces as WorkerLostError
// naming the dead rank — reduce_sum and shutdown degrade gracefully
// instead of deadlocking. See DESIGN.md "Failure model and fault
// injection" and §10 for the service layer built on top of this class.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "util/error.hpp"
#include "util/setup_cache.hpp"

namespace pyhpc::odin {

/// Tags of the driver/worker control plane. These live in the reserved
/// internal p2p space (comm/message.hpp) so a service client's user-tag
/// traffic can never be matched by the control plane; they stay public so
/// fault-injection rules can target them.
inline constexpr int kControlTag = comm::kDriverControlTag;
inline constexpr int kAckTag = comm::kDriverAckTag;
/// Reduce replies are session-tagged: session s replies on
/// `kReplyTag + s % kDriverReplySpan`. Plain DriverContext use is
/// session 0, i.e. kReplyTag itself.
inline constexpr int kReplyTag = comm::kDriverReplyBase;

inline constexpr int reply_tag(std::int32_t session) {
  return comm::kDriverReplyBase +
         static_cast<int>(static_cast<std::uint32_t>(session) %
                          static_cast<std::uint32_t>(comm::kDriverReplySpan));
}

/// Fixed-size control message ("at most tens of bytes").
struct ControlMessage {
  enum class Op : std::int32_t {
    kCreateRandom = 1,
    kCreateFull = 2,
    kUnary = 3,
    kBinary = 4,
    kReduceSum = 5,
    kAxpy = 6,   // result = scalar * arg0 + arg1
    kFree = 7,
    kShutdown = 8,
    // Solve the local block's tridiag(-1, 2, -1) system T x = rhs with a
    // cached Thomas factorization (the service layer's repeated-structure
    // workload; DESIGN.md §10 "setup cache").
    kBlockSolve = 9,
    // Drop every segment owned by this message's session id.
    kCloseSession = 10,
  };

  Op op = Op::kShutdown;
  std::int32_t result_id = -1;
  std::int32_t arg0 = -1;
  std::int32_t arg1 = -1;
  /// Service session this message belongs to; array ids are namespaced
  /// per session on the workers. Plain DriverContext traffic is session 0.
  std::int32_t session = 0;
  std::int32_t reserved = 0;  // explicit padding: keep wire bytes defined
  std::int64_t n = 0;         // global element count for creations
  double scalar = 0.0;        // fill value / seed / axpy coefficient
  char name[8] = {0};         // ufunc name for kUnary/kBinary

  void set_name(const std::string& s) {
    require(s.size() < sizeof(name), "ControlMessage: ufunc name too long");
    std::memset(name, 0, sizeof(name));
    std::memcpy(name, s.data(), s.size());
  }
  std::string get_name() const {
    // name[] need not be NUL-terminated when exactly sizeof(name)-1 chars
    // long is violated by a corrupted payload; bound the scan explicitly.
    std::size_t len = 0;
    while (len < sizeof(name) && name[len] != '\0') ++len;
    return std::string(name, len);
  }
};
static_assert(sizeof(ControlMessage) <= 48,
              "control messages must stay at tens of bytes");

/// Wire frame of a payload acknowledgement: workers echo the epoch they
/// executed under so a stale ack (from a previous DriverContext over the
/// same comm) can never satisfy the new driver's retry loop.
struct AckFrame {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};
static_assert(sizeof(AckFrame) == 16, "AckFrame is two u64s on the wire");

/// Reliability policy for the control plane.
struct DriverOptions {
  /// Acks + bounded retransmission + duplicate suppression. The legacy
  /// DriverContext(comm) constructor turns this off (fire-and-forget, the
  /// paper's minimal protocol).
  bool reliable = true;
  /// How long the driver waits for a payload ack before retransmitting.
  std::chrono::milliseconds ack_timeout{250};
  /// Retransmissions per payload before giving up with CommError.
  int max_retries = 8;
  /// Deadline for a worker's reduce partial (covers compute time).
  std::chrono::milliseconds reply_timeout{5000};
  /// Sequence-number namespace. Every DriverContext generation over the
  /// same comm must use a distinct epoch (all ranks equal); workers
  /// discard payloads from other epochs instead of mis-deduplicating them.
  std::uint64_t epoch = 0;
  /// Capacity of the per-worker setup cache (kBlockSolve factorizations).
  std::size_t setup_cache_capacity = 32;
};

/// Driver-side API (valid on rank 0) plus the worker loop (ranks > 0).
class DriverContext {
 public:
  /// Legacy fire-and-forget control plane (no acks, no retries).
  explicit DriverContext(comm::Communicator& comm);
  /// Hardened control plane; all ranks must construct with equal options.
  DriverContext(comm::Communicator& comm, const DriverOptions& options);

  bool is_driver() const { return comm_->rank() == 0; }
  int num_workers() const { return comm_->size() - 1; }

  /// Workers block here executing control messages until kShutdown.
  /// Corrupted payloads (CommIntegrityError) are discarded like a NIC
  /// dropping a bad-CRC frame; in reliable mode the missing ack makes the
  /// driver retransmit. A control message whose execution fails (bad
  /// array id, unknown ufunc — e.g. one misbehaving service session) is
  /// contained: the error is counted (`driver.worker_op_errors`), a failed
  /// reduce replies NaN so the driver never hangs, and the loop keeps
  /// serving other sessions.
  void worker_loop();

  // ---- driver-side operations (each ships one message per worker) -------

  /// New distributed array of n uniform [0,1) values; returns its id.
  int create_random(std::int64_t n, std::uint64_t seed);
  int create_full(std::int64_t n, double value);
  int unary(const std::string& ufunc, int a);
  int binary(const std::string& ufunc, int a, int b);
  int axpy(double alpha, int x, int y);
  /// result = per-worker-block tridiagonal solve of T x = b (cached setup).
  int block_solve(int b);
  void free_array(int id);
  /// Sum-reduce: workers reply with partials the driver folds. Raises
  /// WorkerLostError naming the rank when a worker has died.
  double reduce_sum(int a);
  /// Delivers shutdown to every live worker, then raises WorkerLostError
  /// (naming the first dead rank) if any worker died along the way.
  void shutdown();

  // ---- message batching (the paper's buffering optimization) ------------

  /// Between begin_batch and flush_batch, messages queue locally and ship
  /// as one payload per worker at flush (or at the next reduce/shutdown).
  /// Prefer BatchGuard (below): these raw calls are not exception-safe on
  /// their own — a throw between them used to leave posted messages
  /// buffered forever, shipping out of order with later traffic.
  void begin_batch();
  void flush_batch();
  /// Leave batching mode and drop everything queued since begin_batch
  /// (the unwind path of BatchGuard).
  void discard_batch();
  bool batching() const { return batching_; }

  // ---- service-layer entry points (DESIGN.md §10) -----------------------

  /// Ship a caller-assembled batch as one sequenced payload per worker
  /// (empty batch = no-op, no sequence number consumed). The ServiceContext
  /// coalescing window drains per-session queues through this.
  void ship_batch(const std::vector<ControlMessage>& batch);
  /// Collect one reduce partial per worker on `session`'s reply tag and
  /// fold them. The matching kReduceSum message must already be shipped.
  double collect_reduce(std::int32_t session);

  /// Driver-side count of control messages and bytes shipped (for F1).
  /// Counts logical ControlMessage traffic; retransmissions count again,
  /// the 16-byte epoch/sequence framing does not.
  std::uint64_t control_messages_sent() const { return messages_; }
  std::uint64_t control_bytes_sent() const { return bytes_; }
  std::uint64_t payloads_sent() const { return payloads_; }

  /// Worker-side setup cache (kBlockSolve factorizations); driver side
  /// stays empty. Exposed for tests and cache-hit-rate assertions.
  const util::SetupCache& setup_cache() const { return *setup_cache_; }

 private:
  void post(const ControlMessage& msg);
  void send_payload(int worker, const std::vector<ControlMessage>& batch,
                    std::uint64_t seq);
  void await_ack_or_retry(int worker,
                          const std::vector<ControlMessage>& batch,
                          std::uint64_t seq);
  [[noreturn]] void raise_worker_lost(int worker, const char* during) const;
  int fresh_id() { return next_id_++; }

  // Worker-side helpers.
  void execute(const ControlMessage& msg, bool& running);
  std::vector<double>& segment(std::int32_t session, std::int32_t id);
  const std::vector<double>& segment_at(std::int32_t session,
                                        std::int32_t id) const;
  std::int64_t local_count(std::int64_t n) const;
  std::int64_t local_offset(std::int64_t n) const;

  comm::Communicator* comm_;
  DriverOptions opts_;
  int next_id_ = 1;
  bool batching_ = false;
  std::vector<ControlMessage> queue_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t payloads_ = 0;
  std::uint64_t seq_ = 0;       // driver: last payload sequence issued
  std::uint64_t last_seq_ = 0;  // worker: last payload sequence executed
  // Worker-side storage: (session id << 32 | array id) -> local segment,
  // so service sessions can never read or clobber each other's arrays.
  std::map<std::uint64_t, std::vector<double>> segments_;
  // Worker-side cache of kBlockSolve Thomas factorizations, keyed on the
  // local block size (the problem *structure*). Shared across sessions by
  // design: factorizations are value-independent.
  std::unique_ptr<util::SetupCache> setup_cache_;
};

/// RAII wrapper for begin_batch/flush_batch: `flush()` ships the batch;
/// destruction without a flush (an exception unwinding through the batch)
/// *discards* the queued messages instead of leaving them buffered to ship
/// out of order with later, unrelated traffic.
class BatchGuard {
 public:
  explicit BatchGuard(DriverContext& ctx) : ctx_(&ctx) { ctx_->begin_batch(); }
  BatchGuard(const BatchGuard&) = delete;
  BatchGuard& operator=(const BatchGuard&) = delete;
  ~BatchGuard() {
    if (!flushed_) ctx_->discard_batch();
  }
  /// Ship everything queued since construction; idempotent.
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    ctx_->flush_batch();
  }

 private:
  DriverContext* ctx_;
  bool flushed_ = false;
};

}  // namespace pyhpc::odin
