// Distribution: how an N-dimensional global array is laid out over the
// ranks of a communicator.
//
// The paper's §III.A promises control over: which nodes participate, which
// dimension or dimensions are distributed, non-uniform sections, and
// "block, cyclic, block-cyclic, or another arbitrary global-to-local index
// mapping". This class implements exactly that: a process grid whose
// dimensions are assigned to array axes, each with a per-axis scheme
// (block / explicit-block / cyclic / block-cyclic); axes not assigned to a
// grid dimension are stored whole on every rank.
#pragma once

#include <memory>
#include <vector>

#include "comm/communicator.hpp"
#include "odin/shape.hpp"

namespace pyhpc::odin {

/// Per-axis layout scheme.
enum class Scheme {
  kBlock,        // contiguous near-uniform blocks
  kExplicit,     // contiguous blocks with caller-given sizes
  kCyclic,       // element i -> process i % P
  kBlockCyclic,  // blocks of size b dealt round-robin
  kReplicated,   // axis not distributed (full extent everywhere)
};

/// Layout of one array axis across `procs` grid processes.
struct AxisSpec {
  Scheme scheme = Scheme::kReplicated;
  int procs = 1;           // grid extent along this axis (1 if replicated)
  index_t block = 1;       // block size for kBlockCyclic
  std::vector<index_t> offsets;  // kBlock/kExplicit: procs+1 cut points

  bool operator==(const AxisSpec& o) const {
    return scheme == o.scheme && procs == o.procs && block == o.block &&
           offsets == o.offsets;
  }
};

class Distribution {
 public:
  /// 1D-style block distribution over a single axis (the default the paper
  /// uses: "each uses a default block distribution").
  static Distribution block(comm::Communicator& comm, Shape shape,
                            int axis = 0);

  /// Block with caller-chosen per-rank section sizes on `axis`
  /// ("apportion non-uniform sections of an array to each node").
  static Distribution explicit_block(comm::Communicator& comm, Shape shape,
                                     int axis,
                                     const std::vector<index_t>& sizes);

  /// Cyclic over one axis.
  static Distribution cyclic(comm::Communicator& comm, Shape shape,
                             int axis = 0);

  /// Block-cyclic with block size `b` over one axis.
  static Distribution block_cyclic(comm::Communicator& comm, Shape shape,
                                   int axis, index_t b);

  /// Block distribution over several axes at once using a process grid
  /// (`grid[k]` processes assigned to `axes[k]`); the grid extents must
  /// multiply to the communicator size.
  static Distribution block_grid(comm::Communicator& comm, Shape shape,
                                 const std::vector<int>& axes,
                                 const std::vector<int>& grid);

  /// Fully replicated (every rank stores everything).
  static Distribution replicated(comm::Communicator& comm, Shape shape);

  const Shape& global_shape() const { return shape_; }
  int ndim() const { return shape_.ndim(); }
  comm::Communicator& comm() const { return *comm_; }
  int rank() const { return comm_->rank(); }
  int num_ranks() const { return comm_->size(); }

  const AxisSpec& axis_spec(int axis) const {
    return specs_[static_cast<std::size_t>(axis)];
  }

  /// Same layout on every axis (and same shape): element-wise operations
  /// need no communication — the paper's "conformable" condition.
  bool conformable(const Distribution& other) const {
    return shape_ == other.shape_ && specs_ == other.specs_ &&
           grid_ == other.grid_;
  }

  /// Local extents on this rank.
  Shape local_shape() const { return local_shape_for(rank()); }

  /// Local extents on an arbitrary rank.
  Shape local_shape_for(int rank) const;

  index_t local_count() const { return local_shape().count(); }

  /// Owning rank and local linear offset of a global multi-index. For
  /// axes replicated across a grid dimension the owner is the rank whose
  /// other coordinates match; replicated axes do not affect ownership.
  /// When the element is replicated on several ranks this returns the
  /// canonical (lowest-rank) copy — use owners_of for all of them.
  std::pair<int, index_t> owner_of(const std::vector<index_t>& gidx) const;

  /// Every (rank, local linear offset) holding a copy of `gidx`. A fully
  /// distributed layout has exactly one; a replicated distribution (empty
  /// process grid) stores a copy on every rank. Writers — redistribute in
  /// particular — must hit all of them, not just the canonical owner.
  std::vector<std::pair<int, index_t>> owners_of(
      const std::vector<index_t>& gidx) const;

  /// Global multi-index of a local linear offset on this rank.
  std::vector<index_t> global_of_local(index_t local_linear) const;

  /// Global multi-index of a local linear offset on an arbitrary rank.
  std::vector<index_t> global_of_local_for(int rank,
                                           index_t local_linear) const;

  /// Per-axis: the grid coordinate owning global index g.
  int axis_owner(int axis, index_t g) const;

  /// Per-axis: local index of global g on its owning grid coordinate.
  index_t axis_local(int axis, index_t g) const;

  /// Per-axis: global index of local index l at grid coordinate c.
  index_t axis_global(int axis, int c, index_t l) const;

  /// Per-axis: local extent at grid coordinate c.
  index_t axis_count(int axis, int c) const;

  /// Grid coordinates of a rank (row-major over grid_).
  std::vector<int> grid_coords(int rank) const;

  /// Rank of grid coordinates.
  int rank_of_coords(const std::vector<int>& coords) const;

  /// The grid dimension assigned to each axis (-1 when replicated).
  int grid_dim_of_axis(int axis) const {
    return axis_grid_dim_[static_cast<std::size_t>(axis)];
  }

  std::string describe() const;

 private:
  Distribution(comm::Communicator& comm, Shape shape)
      : comm_(std::make_shared<comm::Communicator>(comm)),
        shape_(std::move(shape)) {}

  static std::vector<index_t> uniform_offsets(index_t n, int p);
  void finalize();

  std::shared_ptr<comm::Communicator> comm_;
  Shape shape_;
  std::vector<AxisSpec> specs_;     // one per array axis
  std::vector<int> grid_;           // process grid extents (row-major)
  std::vector<int> axis_grid_dim_;  // array axis -> grid dim (-1 replicated)
};

/// A reusable all-to-all plan that moves elements between two distributions
/// of the same global shape (the engine under redistribute()/slicing).
std::vector<int> redistribution_targets(const Distribution& from,
                                        const Distribution& to);

}  // namespace pyhpc::odin
