#include "odin/driver.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/ufunc.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"

namespace pyhpc::odin {

namespace {

// Wire format of one control payload: an 8-byte little-endian-native
// sequence number followed by the packed ControlMessages.
constexpr std::size_t kSeqHeaderBytes = sizeof(std::uint64_t);

std::vector<std::byte> encode_payload(const std::vector<ControlMessage>& batch,
                                      std::uint64_t seq) {
  std::vector<std::byte> raw(kSeqHeaderBytes +
                             batch.size() * sizeof(ControlMessage));
  std::memcpy(raw.data(), &seq, kSeqHeaderBytes);
  if (!batch.empty()) {
    std::memcpy(raw.data() + kSeqHeaderBytes, batch.data(),
                batch.size() * sizeof(ControlMessage));
  }
  return raw;
}

std::uint64_t decode_payload(const std::vector<std::byte>& raw,
                             std::vector<ControlMessage>& batch) {
  require<CommError>(
      raw.size() >= kSeqHeaderBytes &&
          (raw.size() - kSeqHeaderBytes) % sizeof(ControlMessage) == 0,
      "worker: malformed control payload");
  std::uint64_t seq = 0;
  std::memcpy(&seq, raw.data(), kSeqHeaderBytes);
  batch.resize((raw.size() - kSeqHeaderBytes) / sizeof(ControlMessage));
  if (!batch.empty()) {
    std::memcpy(batch.data(), raw.data() + kSeqHeaderBytes,
                batch.size() * sizeof(ControlMessage));
  }
  return seq;
}

}  // namespace

DriverContext::DriverContext(comm::Communicator& comm) : comm_(&comm) {
  require(comm.size() >= 2,
          "DriverContext: need at least one worker besides the driver");
  opts_.reliable = false;
}

DriverContext::DriverContext(comm::Communicator& comm,
                             const DriverOptions& options)
    : comm_(&comm), opts_(options) {
  require(comm.size() >= 2,
          "DriverContext: need at least one worker besides the driver");
  require(opts_.max_retries >= 0,
          "DriverOptions: max_retries must be >= 0");
}

// Workers partition [0, n) in near-equal blocks by worker index.
std::int64_t DriverContext::local_count(std::int64_t n) const {
  const int w = comm_->rank() - 1;
  const int nw = num_workers();
  return n / nw + (w < n % nw ? 1 : 0);
}

std::int64_t DriverContext::local_offset(std::int64_t n) const {
  const int w = comm_->rank() - 1;
  const int nw = num_workers();
  const std::int64_t chunk = n / nw;
  const std::int64_t rem = n % nw;
  return static_cast<std::int64_t>(w) * chunk + std::min<std::int64_t>(w, rem);
}

void DriverContext::raise_worker_lost(int worker, const char* during) const {
  throw WorkerLostError(util::cat("worker rank ", worker, " died during ",
                                  during,
                                  " (fault injection or crash); its segment "
                                  "data is lost"));
}

void DriverContext::send_payload(int worker,
                                 const std::vector<ControlMessage>& batch,
                                 std::uint64_t seq) {
  const auto raw = encode_payload(batch, seq);
  comm_->send_bytes(raw, worker, kControlTag);
  ++payloads_;
  messages_ += batch.size();
  bytes_ += batch.size() * sizeof(ControlMessage);
}

void DriverContext::await_ack_or_retry(
    int worker, const std::vector<ControlMessage>& batch, std::uint64_t seq) {
  obs::Span span("driver.await_ack", "odin");
  if (span.active()) {
    span.arg("worker", static_cast<std::int64_t>(worker));
    span.arg("seq", static_cast<std::int64_t>(seq));
  }
  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (attempt > 0) {
      auto& s = comm_->stats();
      ++s.retries;
      ++s.drops_detected;  // a missing ack means payload or ack was lost
      obs::instant("driver.retransmit", "odin");
      obs::MetricsRegistry::global().add("driver.retransmits", 1.0);
      send_payload(worker, batch, seq);
    }
    try {
      for (;;) {
        const auto ack = comm_->recv_value_within<std::uint64_t>(
            opts_.ack_timeout, worker, kAckTag);
        if (ack >= seq) return;
        // Stale ack from an earlier duplicate delivery; keep waiting.
      }
    } catch (const RecvTimeoutError&) {
      if (comm_->rank_dead(worker)) {
        raise_worker_lost(worker, "control payload acknowledgement");
      }
      // Lost payload or lost ack: fall through and retransmit.
    } catch (const CommIntegrityError&) {
      // Corrupted ack: treat as lost and retransmit. (The worker dedups the
      // retransmission by sequence number and simply re-acks.)
    }
  }
  throw CommError(util::cat("driver: no ack from worker rank ", worker,
                            " for control payload ", seq, " after ",
                            opts_.max_retries, " retries"));
}

void DriverContext::ship(const std::vector<ControlMessage>& batch) {
  if (batch.empty()) return;
  obs::Span span("driver.ship", "odin");
  if (span.active()) {
    span.arg("messages", static_cast<std::int64_t>(batch.size()));
    span.arg("workers", static_cast<std::int64_t>(comm_->size() - 1));
    span.arg("reliable", static_cast<std::int64_t>(opts_.reliable ? 1 : 0));
  }
  obs::MetricsRegistry::global().add("driver.payloads_shipped", 1.0);
  const std::uint64_t seq = ++seq_;
  for (int w = 1; w < comm_->size(); ++w) send_payload(w, batch, seq);
  if (opts_.reliable) {
    for (int w = 1; w < comm_->size(); ++w) {
      await_ack_or_retry(w, batch, seq);
    }
  }
}

void DriverContext::post(const ControlMessage& msg) {
  require(is_driver(), "DriverContext: operations are driver-side only");
  if (batching_) {
    queue_.push_back(msg);
    return;
  }
  ship({msg});
}

void DriverContext::begin_batch() {
  require(is_driver(), "DriverContext: begin_batch is driver-side only");
  batching_ = true;
}

void DriverContext::flush_batch() {
  require(is_driver(), "DriverContext: flush_batch is driver-side only");
  batching_ = false;
  if (queue_.empty()) return;
  ship(queue_);
  queue_.clear();
}

int DriverContext::create_random(std::int64_t n, std::uint64_t seed) {
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateRandom;
  m.result_id = fresh_id();
  m.n = n;
  m.scalar = static_cast<double>(seed);
  post(m);
  return m.result_id;
}

int DriverContext::create_full(std::int64_t n, double value) {
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateFull;
  m.result_id = fresh_id();
  m.n = n;
  m.scalar = value;
  post(m);
  return m.result_id;
}

int DriverContext::unary(const std::string& ufunc, int a) {
  ControlMessage m;
  m.op = ControlMessage::Op::kUnary;
  m.result_id = fresh_id();
  m.arg0 = a;
  m.set_name(ufunc);
  post(m);
  return m.result_id;
}

int DriverContext::binary(const std::string& ufunc, int a, int b) {
  ControlMessage m;
  m.op = ControlMessage::Op::kBinary;
  m.result_id = fresh_id();
  m.arg0 = a;
  m.arg1 = b;
  m.set_name(ufunc);
  post(m);
  return m.result_id;
}

int DriverContext::axpy(double alpha, int x, int y) {
  ControlMessage m;
  m.op = ControlMessage::Op::kAxpy;
  m.result_id = fresh_id();
  m.arg0 = x;
  m.arg1 = y;
  m.scalar = alpha;
  post(m);
  return m.result_id;
}

void DriverContext::free_array(int id) {
  ControlMessage m;
  m.op = ControlMessage::Op::kFree;
  m.arg0 = id;
  post(m);
}

double DriverContext::reduce_sum(int a) {
  if (batching_) flush_batch();
  ControlMessage m;
  m.op = ControlMessage::Op::kReduceSum;
  m.arg0 = a;
  post(m);
  double total = 0.0;
  for (int w = 1; w < comm_->size(); ++w) {
    if (comm_->rank_dead(w)) raise_worker_lost(w, "reduce_sum");
    if (opts_.reliable) {
      try {
        total += comm_->recv_value_within<double>(opts_.reply_timeout, w,
                                                  kReplyTag);
      } catch (const RecvTimeoutError&) {
        if (comm_->rank_dead(w)) raise_worker_lost(w, "reduce_sum");
        throw;
      }
    } else {
      total += comm_->recv_value<double>(w, kReplyTag);
    }
  }
  return total;
}

void DriverContext::shutdown() {
  if (batching_) flush_batch();
  ControlMessage m;
  m.op = ControlMessage::Op::kShutdown;
  // Inline ship() so one dead worker cannot stop the shutdown from
  // reaching the live ones: deliver everywhere first, collect acks from
  // live workers, then report the first casualty.
  const std::vector<ControlMessage> batch{m};
  const std::uint64_t seq = ++seq_;
  for (int w = 1; w < comm_->size(); ++w) send_payload(w, batch, seq);
  int first_dead = -1;
  if (opts_.reliable) {
    for (int w = 1; w < comm_->size(); ++w) {
      if (comm_->rank_dead(w)) {
        if (first_dead < 0) first_dead = w;
        continue;
      }
      try {
        await_ack_or_retry(w, batch, seq);
      } catch (const WorkerLostError&) {
        if (first_dead < 0) first_dead = w;
      }
    }
  }
  if (first_dead >= 0) raise_worker_lost(first_dead, "shutdown");
}

void DriverContext::worker_loop() {
  require(!is_driver(), "DriverContext: worker_loop is worker-side only");
  bool running = true;
  while (running) {
    std::vector<std::byte> raw;
    try {
      comm_->recv_bytes(raw, 0, kControlTag);
    } catch (const CommIntegrityError&) {
      // Corrupted payload: discard it (counted in CommStats by the
      // receive path). In reliable mode the driver retransmits on the
      // missing ack; in legacy mode the loss is silent, as on a real NIC.
      continue;
    }
    std::vector<ControlMessage> batch;
    const std::uint64_t seq = decode_payload(raw, batch);
    if (opts_.reliable && seq <= last_seq_) {
      // Retransmission or injected duplicate of a payload already
      // executed: just re-ack so the driver stops retrying.
      obs::instant("driver.duplicate_payload", "odin");
      obs::MetricsRegistry::global().add("driver.duplicate_payloads", 1.0);
      comm_->send_value<std::uint64_t>(seq, 0, kAckTag);
      continue;
    }
    last_seq_ = seq;
    for (const auto& msg : batch) {
      execute(msg, running);
      if (!running) break;
    }
    if (opts_.reliable) {
      obs::MetricsRegistry::global().add("driver.acks_sent", 1.0);
      comm_->send_value<std::uint64_t>(seq, 0, kAckTag);
    }
  }
}

void DriverContext::execute(const ControlMessage& msg, bool& running) {
  using Op = ControlMessage::Op;
  switch (msg.op) {
    case Op::kCreateRandom: {
      auto& seg = segments_[msg.result_id];
      seg.resize(static_cast<std::size_t>(local_count(msg.n)));
      util::Xoshiro256 rng(static_cast<std::uint64_t>(msg.scalar),
                           static_cast<std::uint64_t>(comm_->rank()));
      for (auto& x : seg) x = rng.next_double();
      break;
    }
    case Op::kCreateFull: {
      auto& seg = segments_[msg.result_id];
      seg.assign(static_cast<std::size_t>(local_count(msg.n)), msg.scalar);
      break;
    }
    case Op::kUnary: {
      const auto& fn = UfuncRegistry::builtin().unary(msg.get_name());
      const auto& in = segments_.at(msg.arg0);
      auto& out = segments_[msg.result_id];
      out.resize(in.size());
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = fn(in[i]);
      break;
    }
    case Op::kBinary: {
      const auto& fn = UfuncRegistry::builtin().binary(msg.get_name());
      const auto& a = segments_.at(msg.arg0);
      const auto& b = segments_.at(msg.arg1);
      require(a.size() == b.size(), "driver worker: segment size mismatch");
      auto& out = segments_[msg.result_id];
      out.resize(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) out[i] = fn(a[i], b[i]);
      break;
    }
    case Op::kAxpy: {
      const auto& x = segments_.at(msg.arg0);
      const auto& y = segments_.at(msg.arg1);
      require(x.size() == y.size(), "driver worker: segment size mismatch");
      auto& out = segments_[msg.result_id];
      out.resize(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = msg.scalar * x[i] + y[i];
      }
      break;
    }
    case Op::kReduceSum: {
      const auto& a = segments_.at(msg.arg0);
      double partial = 0.0;
      for (double v : a) partial += v;
      comm_->send_value(partial, 0, kReplyTag);
      break;
    }
    case Op::kFree:
      segments_.erase(msg.arg0);
      break;
    case Op::kShutdown:
      running = false;
      break;
  }
}

}  // namespace pyhpc::odin
