#include "odin/driver.hpp"

#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "odin/ufunc.hpp"
#include "util/random.hpp"
#include "util/string_util.hpp"

namespace pyhpc::odin {

namespace {

// Wire format of one control payload: a 16-byte native-endian
// [epoch u64][sequence u64] header followed by the packed ControlMessages.
// Both encode and decode guard the messages memcpy on emptiness — a
// zero-message payload (possible through ship_batch retransmission paths)
// must not touch data() of an empty region (the memcpy-on-empty UB class
// fixed for the p2p decode paths in earlier PRs).
constexpr std::size_t kFrameHeaderBytes = 2 * sizeof(std::uint64_t);

struct FrameHeader {
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
};

std::vector<std::byte> encode_payload(const std::vector<ControlMessage>& batch,
                                      std::uint64_t epoch, std::uint64_t seq) {
  std::vector<std::byte> raw(kFrameHeaderBytes +
                             batch.size() * sizeof(ControlMessage));
  FrameHeader hdr{epoch, seq};
  std::memcpy(raw.data(), &hdr, kFrameHeaderBytes);
  if (!batch.empty()) {
    std::memcpy(raw.data() + kFrameHeaderBytes, batch.data(),
                batch.size() * sizeof(ControlMessage));
  }
  return raw;
}

FrameHeader decode_payload(const std::vector<std::byte>& raw,
                           std::vector<ControlMessage>& batch) {
  require<CommError>(
      raw.size() >= kFrameHeaderBytes &&
          (raw.size() - kFrameHeaderBytes) % sizeof(ControlMessage) == 0,
      "worker: malformed control payload");
  FrameHeader hdr;
  std::memcpy(&hdr, raw.data(), kFrameHeaderBytes);
  batch.resize((raw.size() - kFrameHeaderBytes) / sizeof(ControlMessage));
  if (!batch.empty()) {
    std::memcpy(batch.data(), raw.data() + kFrameHeaderBytes,
                batch.size() * sizeof(ControlMessage));
  }
  return hdr;
}

// Thomas-algorithm setup for the fixed tridiag(-1, 2, -1) system of local
// size m: the value-independent forward-elimination coefficients. This is
// the artifact the worker-side SetupCache amortizes across repeated
// same-structure solves (DESIGN.md §10).
struct TridiagSetup {
  std::vector<double> cp;         // modified superdiagonal c'_i
  std::vector<double> inv_denom;  // 1 / (b_i - a_i c'_{i-1})
};

std::shared_ptr<TridiagSetup> build_tridiag_setup(std::size_t m) {
  auto s = std::make_shared<TridiagSetup>();
  s->cp.resize(m);
  s->inv_denom.resize(m);
  double prev_cp = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    // a_i = -1 (sub), b_i = 2, c_i = -1 (super); denom = b - a * c'_{i-1}.
    const double denom = 2.0 + prev_cp;
    s->inv_denom[i] = 1.0 / denom;
    s->cp[i] = -1.0 * s->inv_denom[i];
    prev_cp = s->cp[i];
  }
  return s;
}

void tridiag_solve(const TridiagSetup& s, const std::vector<double>& rhs,
                   std::vector<double>& x) {
  const std::size_t m = rhs.size();
  x.resize(m);
  if (m == 0) return;
  // Forward sweep: d'_i = (d_i - a_i d'_{i-1}) / denom_i with a_i = -1.
  double prev = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    prev = (rhs[i] + prev) * s.inv_denom[i];
    x[i] = prev;
  }
  // Back substitution: x_i = d'_i - c'_i x_{i+1}.
  for (std::size_t i = m - 1; i-- > 0;) {
    x[i] -= s.cp[i] * x[i + 1];
  }
}

std::uint64_t segment_key(std::int32_t session, std::int32_t id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(session))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
}

}  // namespace

DriverContext::DriverContext(comm::Communicator& comm) : comm_(&comm) {
  require(comm.size() >= 2,
          "DriverContext: need at least one worker besides the driver");
  opts_.reliable = false;
  setup_cache_ = std::make_unique<util::SetupCache>(
      opts_.setup_cache_capacity, "service.cache");
}

DriverContext::DriverContext(comm::Communicator& comm,
                             const DriverOptions& options)
    : comm_(&comm), opts_(options) {
  require(comm.size() >= 2,
          "DriverContext: need at least one worker besides the driver");
  require(opts_.max_retries >= 0,
          "DriverOptions: max_retries must be >= 0");
  require(opts_.setup_cache_capacity > 0,
          "DriverOptions: setup_cache_capacity must be positive");
  setup_cache_ = std::make_unique<util::SetupCache>(
      opts_.setup_cache_capacity, "service.cache");
}

// Workers partition [0, n) in near-equal blocks by worker index.
std::int64_t DriverContext::local_count(std::int64_t n) const {
  const int w = comm_->rank() - 1;
  const int nw = num_workers();
  return n / nw + (w < n % nw ? 1 : 0);
}

std::int64_t DriverContext::local_offset(std::int64_t n) const {
  const int w = comm_->rank() - 1;
  const int nw = num_workers();
  const std::int64_t chunk = n / nw;
  const std::int64_t rem = n % nw;
  return static_cast<std::int64_t>(w) * chunk + std::min<std::int64_t>(w, rem);
}

void DriverContext::raise_worker_lost(int worker, const char* during) const {
  throw WorkerLostError(util::cat("worker rank ", worker, " died during ",
                                  during,
                                  " (fault injection or crash); its segment "
                                  "data is lost"));
}

void DriverContext::send_payload(int worker,
                                 const std::vector<ControlMessage>& batch,
                                 std::uint64_t seq) {
  const auto raw = encode_payload(batch, opts_.epoch, seq);
  comm_->send_internal(std::span<const std::byte>(raw), worker, kControlTag);
  ++payloads_;
  messages_ += batch.size();
  bytes_ += batch.size() * sizeof(ControlMessage);
}

void DriverContext::await_ack_or_retry(
    int worker, const std::vector<ControlMessage>& batch, std::uint64_t seq) {
  obs::Span span("driver.await_ack", "odin");
  if (span.active()) {
    span.arg("worker", static_cast<std::int64_t>(worker));
    span.arg("seq", static_cast<std::int64_t>(seq));
  }
  for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
    if (attempt > 0) {
      auto& s = comm_->stats();
      ++s.retries;
      ++s.drops_detected;  // a missing ack means payload or ack was lost
      obs::instant("driver.retransmit", "odin");
      obs::MetricsRegistry::global().add("driver.retransmits", 1.0);
      send_payload(worker, batch, seq);
    }
    try {
      for (;;) {
        const auto ack = comm_->recv_value_within<AckFrame>(
            opts_.ack_timeout, worker, kAckTag);
        if (ack.epoch != opts_.epoch) {
          // Ack addressed to a previous driver generation over this comm;
          // its sequence numbers live in a different namespace, so even a
          // large ack.seq proves nothing about *our* payload. Drop it.
          obs::MetricsRegistry::global().add("driver.stale_epoch_acks", 1.0);
          continue;
        }
        if (ack.seq >= seq) return;
        // Stale ack from an earlier duplicate delivery; keep waiting.
      }
    } catch (const PeerKilledError&) {
      // Fast-path death detection: the receive failed the moment the
      // worker died instead of waiting out the ack timeout.
      raise_worker_lost(worker, "control payload acknowledgement");
    } catch (const RecvTimeoutError&) {
      if (comm_->rank_dead(worker)) {
        raise_worker_lost(worker, "control payload acknowledgement");
      }
      // Lost payload or lost ack: fall through and retransmit.
    } catch (const CommIntegrityError&) {
      // Corrupted ack: treat as lost and retransmit. (The worker dedups the
      // retransmission by sequence number and simply re-acks.)
    }
  }
  throw CommError(util::cat("driver: no ack from worker rank ", worker,
                            " for control payload ", seq, " after ",
                            opts_.max_retries, " retries"));
}

void DriverContext::ship_batch(const std::vector<ControlMessage>& batch) {
  require(is_driver(), "DriverContext: ship_batch is driver-side only");
  if (batch.empty()) return;
  obs::Span span("driver.ship", "odin");
  if (span.active()) {
    span.arg("messages", static_cast<std::int64_t>(batch.size()));
    span.arg("workers", static_cast<std::int64_t>(comm_->size() - 1));
    span.arg("reliable", static_cast<std::int64_t>(opts_.reliable ? 1 : 0));
  }
  obs::MetricsRegistry::global().add("driver.payloads_shipped", 1.0);
  const std::uint64_t seq = ++seq_;
  for (int w = 1; w < comm_->size(); ++w) send_payload(w, batch, seq);
  if (opts_.reliable) {
    for (int w = 1; w < comm_->size(); ++w) {
      await_ack_or_retry(w, batch, seq);
    }
  }
}

void DriverContext::post(const ControlMessage& msg) {
  require(is_driver(), "DriverContext: operations are driver-side only");
  if (batching_) {
    queue_.push_back(msg);
    return;
  }
  ship_batch({msg});
}

void DriverContext::begin_batch() {
  require(is_driver(), "DriverContext: begin_batch is driver-side only");
  batching_ = true;
}

void DriverContext::flush_batch() {
  require(is_driver(), "DriverContext: flush_batch is driver-side only");
  batching_ = false;
  if (queue_.empty()) return;
  ship_batch(queue_);
  queue_.clear();
}

void DriverContext::discard_batch() {
  require(is_driver(), "DriverContext: discard_batch is driver-side only");
  batching_ = false;
  queue_.clear();
}

int DriverContext::create_random(std::int64_t n, std::uint64_t seed) {
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateRandom;
  m.result_id = fresh_id();
  m.n = n;
  m.scalar = static_cast<double>(seed);
  post(m);
  return m.result_id;
}

int DriverContext::create_full(std::int64_t n, double value) {
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateFull;
  m.result_id = fresh_id();
  m.n = n;
  m.scalar = value;
  post(m);
  return m.result_id;
}

int DriverContext::unary(const std::string& ufunc, int a) {
  ControlMessage m;
  m.op = ControlMessage::Op::kUnary;
  m.result_id = fresh_id();
  m.arg0 = a;
  m.set_name(ufunc);
  post(m);
  return m.result_id;
}

int DriverContext::binary(const std::string& ufunc, int a, int b) {
  ControlMessage m;
  m.op = ControlMessage::Op::kBinary;
  m.result_id = fresh_id();
  m.arg0 = a;
  m.arg1 = b;
  m.set_name(ufunc);
  post(m);
  return m.result_id;
}

int DriverContext::axpy(double alpha, int x, int y) {
  ControlMessage m;
  m.op = ControlMessage::Op::kAxpy;
  m.result_id = fresh_id();
  m.arg0 = x;
  m.arg1 = y;
  m.scalar = alpha;
  post(m);
  return m.result_id;
}

int DriverContext::block_solve(int b) {
  ControlMessage m;
  m.op = ControlMessage::Op::kBlockSolve;
  m.result_id = fresh_id();
  m.arg0 = b;
  post(m);
  return m.result_id;
}

void DriverContext::free_array(int id) {
  ControlMessage m;
  m.op = ControlMessage::Op::kFree;
  m.arg0 = id;
  post(m);
}

double DriverContext::collect_reduce(std::int32_t session) {
  require(is_driver(), "DriverContext: collect_reduce is driver-side only");
  const int tag = reply_tag(session);
  double total = 0.0;
  for (int w = 1; w < comm_->size(); ++w) {
    if (comm_->rank_dead(w)) raise_worker_lost(w, "reduce_sum");
    if (opts_.reliable) {
      try {
        total += comm_->recv_value_within<double>(opts_.reply_timeout, w, tag);
      } catch (const PeerKilledError&) {
        raise_worker_lost(w, "reduce_sum");
      } catch (const RecvTimeoutError&) {
        if (comm_->rank_dead(w)) raise_worker_lost(w, "reduce_sum");
        throw;
      }
    } else {
      try {
        total += comm_->recv_value<double>(w, tag);
      } catch (const PeerKilledError&) {
        raise_worker_lost(w, "reduce_sum");
      }
    }
  }
  return total;
}

double DriverContext::reduce_sum(int a) {
  if (batching_) flush_batch();
  ControlMessage m;
  m.op = ControlMessage::Op::kReduceSum;
  m.arg0 = a;
  post(m);
  return collect_reduce(0);
}

void DriverContext::shutdown() {
  if (batching_) flush_batch();
  ControlMessage m;
  m.op = ControlMessage::Op::kShutdown;
  // Inline ship_batch() so one dead worker cannot stop the shutdown from
  // reaching the live ones: deliver everywhere first, collect acks from
  // live workers, then report the first casualty.
  const std::vector<ControlMessage> batch{m};
  const std::uint64_t seq = ++seq_;
  for (int w = 1; w < comm_->size(); ++w) send_payload(w, batch, seq);
  int first_dead = -1;
  if (opts_.reliable) {
    for (int w = 1; w < comm_->size(); ++w) {
      if (comm_->rank_dead(w)) {
        if (first_dead < 0) first_dead = w;
        continue;
      }
      try {
        await_ack_or_retry(w, batch, seq);
      } catch (const WorkerLostError&) {
        if (first_dead < 0) first_dead = w;
      }
    }
  }
  if (first_dead >= 0) raise_worker_lost(first_dead, "shutdown");
}

void DriverContext::worker_loop() {
  require(!is_driver(), "DriverContext: worker_loop is worker-side only");
  bool running = true;
  while (running) {
    std::vector<std::byte> raw;
    try {
      comm_->recv_bytes(raw, 0, kControlTag);
    } catch (const CommIntegrityError&) {
      // Corrupted payload: discard it (counted in CommStats by the
      // receive path). In reliable mode the driver retransmits on the
      // missing ack; in legacy mode the loss is silent, as on a real NIC.
      continue;
    }
    std::vector<ControlMessage> batch;
    const FrameHeader hdr = decode_payload(raw, batch);
    if (hdr.epoch != opts_.epoch) {
      // Payload from a different driver generation over the same comm
      // (e.g. a duplicate still in flight when the old context was torn
      // down). Its sequence numbers belong to another namespace: do NOT
      // touch last_seq_, do NOT execute, do NOT ack — the sender is gone.
      obs::instant("driver.stale_epoch_payload", "odin");
      obs::MetricsRegistry::global().add("driver.stale_epoch_payloads", 1.0);
      continue;
    }
    if (opts_.reliable && hdr.seq <= last_seq_) {
      // Retransmission or injected duplicate of a payload already
      // executed: just re-ack so the driver stops retrying.
      obs::instant("driver.duplicate_payload", "odin");
      obs::MetricsRegistry::global().add("driver.duplicate_payloads", 1.0);
      comm_->send_value_internal(AckFrame{opts_.epoch, hdr.seq}, 0, kAckTag);
      continue;
    }
    last_seq_ = hdr.seq;
    for (const auto& msg : batch) {
      try {
        execute(msg, running);
      } catch (const CommError&) {
        // Substrate failure (killed rank, revoked comm): the loop cannot
        // continue meaningfully — propagate to the runner.
        throw;
      } catch (const std::exception&) {
        // One bad control message (dangling array id, unknown ufunc,
        // size mismatch — typically one misbehaving service session) must
        // not take the worker down for everyone else. Count it; a failed
        // reduce still replies (NaN) so the driver's collection loop
        // never times out waiting for a partial that will not come.
        obs::MetricsRegistry::global().add("driver.worker_op_errors", 1.0);
        if (msg.op == ControlMessage::Op::kReduceSum) {
          comm_->send_value_internal(std::numeric_limits<double>::quiet_NaN(),
                                     0, reply_tag(msg.session));
        }
      }
      if (!running) break;
    }
    if (opts_.reliable) {
      obs::MetricsRegistry::global().add("driver.acks_sent", 1.0);
      comm_->send_value_internal(AckFrame{opts_.epoch, hdr.seq}, 0, kAckTag);
    }
  }
}

std::vector<double>& DriverContext::segment(std::int32_t session,
                                            std::int32_t id) {
  return segments_[segment_key(session, id)];
}

const std::vector<double>& DriverContext::segment_at(std::int32_t session,
                                                     std::int32_t id) const {
  auto it = segments_.find(segment_key(session, id));
  require(it != segments_.end(),
          util::cat("driver worker: unknown array id ", id, " in session ",
                    session));
  return it->second;
}

void DriverContext::execute(const ControlMessage& msg, bool& running) {
  using Op = ControlMessage::Op;
  switch (msg.op) {
    case Op::kCreateRandom: {
      auto& seg = segment(msg.session, msg.result_id);
      seg.resize(static_cast<std::size_t>(local_count(msg.n)));
      util::Xoshiro256 rng(static_cast<std::uint64_t>(msg.scalar),
                           static_cast<std::uint64_t>(comm_->rank()));
      for (auto& x : seg) x = rng.next_double();
      break;
    }
    case Op::kCreateFull: {
      auto& seg = segment(msg.session, msg.result_id);
      seg.assign(static_cast<std::size_t>(local_count(msg.n)), msg.scalar);
      break;
    }
    case Op::kUnary: {
      const auto& fn = UfuncRegistry::builtin().unary(msg.get_name());
      const auto& in = segment_at(msg.session, msg.arg0);
      auto& out = segment(msg.session, msg.result_id);
      out.resize(in.size());
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = fn(in[i]);
      break;
    }
    case Op::kBinary: {
      const auto& fn = UfuncRegistry::builtin().binary(msg.get_name());
      const auto& a = segment_at(msg.session, msg.arg0);
      const auto& b = segment_at(msg.session, msg.arg1);
      require(a.size() == b.size(), "driver worker: segment size mismatch");
      auto& out = segment(msg.session, msg.result_id);
      out.resize(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) out[i] = fn(a[i], b[i]);
      break;
    }
    case Op::kAxpy: {
      const auto& x = segment_at(msg.session, msg.arg0);
      const auto& y = segment_at(msg.session, msg.arg1);
      require(x.size() == y.size(), "driver worker: segment size mismatch");
      auto& out = segment(msg.session, msg.result_id);
      out.resize(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = msg.scalar * x[i] + y[i];
      }
      break;
    }
    case Op::kBlockSolve: {
      const auto& rhs = segment_at(msg.session, msg.arg0);
      const auto setup = setup_cache_->get_or_build<TridiagSetup>(
          util::cat("tridiag:", rhs.size()),
          [&] { return build_tridiag_setup(rhs.size()); });
      auto& out = segment(msg.session, msg.result_id);
      tridiag_solve(*setup, rhs, out);
      break;
    }
    case Op::kReduceSum: {
      const auto& a = segment_at(msg.session, msg.arg0);
      double partial = 0.0;
      for (double v : a) partial += v;
      comm_->send_value_internal(partial, 0, reply_tag(msg.session));
      break;
    }
    case Op::kFree:
      segments_.erase(segment_key(msg.session, msg.arg0));
      break;
    case Op::kCloseSession: {
      // Drop every segment in [session << 32, (session + 1) << 32).
      const auto lo = segments_.lower_bound(segment_key(msg.session, 0));
      const auto hi = segments_.lower_bound(
          segment_key(msg.session, 0) + (1ULL << 32));
      segments_.erase(lo, hi);
      break;
    }
    case Op::kShutdown:
      running = false;
      break;
  }
}

}  // namespace pyhpc::odin
