#include "odin/driver.hpp"

#include "odin/ufunc.hpp"
#include "util/random.hpp"

namespace pyhpc::odin {

namespace {
constexpr int kControlTag = 9001;
constexpr int kReplyTag = 9002;
}  // namespace

DriverContext::DriverContext(comm::Communicator& comm) : comm_(&comm) {
  require(comm.size() >= 2,
          "DriverContext: need at least one worker besides the driver");
}

// Workers partition [0, n) in near-equal blocks by worker index.
std::int64_t DriverContext::local_count(std::int64_t n) const {
  const int w = comm_->rank() - 1;
  const int nw = num_workers();
  return n / nw + (w < n % nw ? 1 : 0);
}

std::int64_t DriverContext::local_offset(std::int64_t n) const {
  const int w = comm_->rank() - 1;
  const int nw = num_workers();
  const std::int64_t chunk = n / nw;
  const std::int64_t rem = n % nw;
  return static_cast<std::int64_t>(w) * chunk + std::min<std::int64_t>(w, rem);
}

void DriverContext::send_payload(int worker,
                                 const std::vector<ControlMessage>& batch) {
  comm_->send(std::span<const ControlMessage>(batch), worker, kControlTag);
  ++payloads_;
  messages_ += batch.size();
  bytes_ += batch.size() * sizeof(ControlMessage);
}

void DriverContext::post(const ControlMessage& msg) {
  require(is_driver(), "DriverContext: operations are driver-side only");
  if (batching_) {
    queue_.push_back(msg);
    return;
  }
  const std::vector<ControlMessage> single{msg};
  for (int w = 1; w < comm_->size(); ++w) send_payload(w, single);
}

void DriverContext::begin_batch() {
  require(is_driver(), "DriverContext: begin_batch is driver-side only");
  batching_ = true;
}

void DriverContext::flush_batch() {
  require(is_driver(), "DriverContext: flush_batch is driver-side only");
  batching_ = false;
  if (queue_.empty()) return;
  for (int w = 1; w < comm_->size(); ++w) send_payload(w, queue_);
  queue_.clear();
}

int DriverContext::create_random(std::int64_t n, std::uint64_t seed) {
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateRandom;
  m.result_id = fresh_id();
  m.n = n;
  m.scalar = static_cast<double>(seed);
  post(m);
  return m.result_id;
}

int DriverContext::create_full(std::int64_t n, double value) {
  ControlMessage m;
  m.op = ControlMessage::Op::kCreateFull;
  m.result_id = fresh_id();
  m.n = n;
  m.scalar = value;
  post(m);
  return m.result_id;
}

int DriverContext::unary(const std::string& ufunc, int a) {
  ControlMessage m;
  m.op = ControlMessage::Op::kUnary;
  m.result_id = fresh_id();
  m.arg0 = a;
  m.set_name(ufunc);
  post(m);
  return m.result_id;
}

int DriverContext::binary(const std::string& ufunc, int a, int b) {
  ControlMessage m;
  m.op = ControlMessage::Op::kBinary;
  m.result_id = fresh_id();
  m.arg0 = a;
  m.arg1 = b;
  m.set_name(ufunc);
  post(m);
  return m.result_id;
}

int DriverContext::axpy(double alpha, int x, int y) {
  ControlMessage m;
  m.op = ControlMessage::Op::kAxpy;
  m.result_id = fresh_id();
  m.arg0 = x;
  m.arg1 = y;
  m.scalar = alpha;
  post(m);
  return m.result_id;
}

void DriverContext::free_array(int id) {
  ControlMessage m;
  m.op = ControlMessage::Op::kFree;
  m.arg0 = id;
  post(m);
}

double DriverContext::reduce_sum(int a) {
  if (batching_) flush_batch();
  ControlMessage m;
  m.op = ControlMessage::Op::kReduceSum;
  m.arg0 = a;
  post(m);
  double total = 0.0;
  for (int w = 1; w < comm_->size(); ++w) {
    total += comm_->recv_value<double>(w, kReplyTag);
  }
  return total;
}

void DriverContext::shutdown() {
  if (batching_) flush_batch();
  ControlMessage m;
  m.op = ControlMessage::Op::kShutdown;
  post(m);
}

void DriverContext::worker_loop() {
  require(!is_driver(), "DriverContext: worker_loop is worker-side only");
  bool running = true;
  while (running) {
    auto batch = comm_->recv_vector<ControlMessage>(0, kControlTag);
    for (const auto& msg : batch) {
      execute(msg, running);
      if (!running) break;
    }
  }
}

void DriverContext::execute(const ControlMessage& msg, bool& running) {
  using Op = ControlMessage::Op;
  switch (msg.op) {
    case Op::kCreateRandom: {
      auto& seg = segments_[msg.result_id];
      seg.resize(static_cast<std::size_t>(local_count(msg.n)));
      util::Xoshiro256 rng(static_cast<std::uint64_t>(msg.scalar),
                           static_cast<std::uint64_t>(comm_->rank()));
      for (auto& x : seg) x = rng.next_double();
      break;
    }
    case Op::kCreateFull: {
      auto& seg = segments_[msg.result_id];
      seg.assign(static_cast<std::size_t>(local_count(msg.n)), msg.scalar);
      break;
    }
    case Op::kUnary: {
      const auto& fn = UfuncRegistry::builtin().unary(msg.get_name());
      const auto& in = segments_.at(msg.arg0);
      auto& out = segments_[msg.result_id];
      out.resize(in.size());
      for (std::size_t i = 0; i < in.size(); ++i) out[i] = fn(in[i]);
      break;
    }
    case Op::kBinary: {
      const auto& fn = UfuncRegistry::builtin().binary(msg.get_name());
      const auto& a = segments_.at(msg.arg0);
      const auto& b = segments_.at(msg.arg1);
      require(a.size() == b.size(), "driver worker: segment size mismatch");
      auto& out = segments_[msg.result_id];
      out.resize(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) out[i] = fn(a[i], b[i]);
      break;
    }
    case Op::kAxpy: {
      const auto& x = segments_.at(msg.arg0);
      const auto& y = segments_.at(msg.arg1);
      require(x.size() == y.size(), "driver worker: segment size mismatch");
      auto& out = segments_[msg.result_id];
      out.resize(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        out[i] = msg.scalar * x[i] + y[i];
      }
      break;
    }
    case Op::kReduceSum: {
      const auto& a = segments_.at(msg.arg0);
      double partial = 0.0;
      for (double v : a) partial += v;
      comm_->send_value(partial, 0, kReplyTag);
      break;
    }
    case Op::kFree:
      segments_.erase(msg.arg0);
      break;
    case Op::kShutdown:
      running = false;
      break;
  }
}

}  // namespace pyhpc::odin
