// ODIN local mode (§III.C): the odin.local decorator analogue.
//
// A "local function" runs once per rank against the local segments of the
// distributed arguments, with a LocalContext giving the rank identity, the
// global context of each segment, and the communicator for direct
// worker-to-worker communication (the paper: "a local function could
// perform any arbitrary operation, including communication with another
// node").
//
// register_local / call_local mirror the decorator's second duty: the
// function object is "broadcast ... to all worker nodes and injected into
// their namespace, so it is able to be called from the global level" —
// here a process-wide registry keyed by name, which is also what the Fig-1
// driver dispatches with its tens-of-bytes control messages.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "odin/dist_array.hpp"

namespace pyhpc::odin {

/// Everything a node-level function may need about its segment.
struct LocalContext {
  int rank = 0;
  int num_ranks = 1;
  comm::Communicator* comm = nullptr;  // direct worker-to-worker channel
  const Distribution* dist = nullptr;  // layout of the first argument

  /// Global multi-index of a local linear offset of the first argument.
  std::vector<index_t> global_of(index_t local_linear) const {
    return dist->global_of_local(local_linear);
  }
};

/// Runs `fn(ctx, local segment)` on every rank; the segment is writable.
template <class T, class F>
void local_apply(DistArray<T>& a, F&& fn) {
  LocalContext ctx{a.dist().rank(), a.dist().num_ranks(), &a.dist().comm(),
                   &a.dist()};
  fn(ctx, a.local_view());
}

/// Two-argument variant (e.g. the paper's hypot(x, y) example). The arrays
/// must be conformable so the segments align element-by-element.
template <class T, class F>
DistArray<T> local_map2(const DistArray<T>& x, const DistArray<T>& y,
                        F&& fn) {
  require<ShapeError>(x.dist().conformable(y.dist()),
                      "local_map2: arguments must be conformable");
  DistArray<T> out(x.dist());
  LocalContext ctx{x.dist().rank(), x.dist().num_ranks(), &x.dist().comm(),
                   &x.dist()};
  fn(ctx, x.local_view(), y.local_view(), out.local_view());
  return out;
}

/// Signature of a registered node-level function: reads the segments of
/// its inputs and writes the segment of its output.
using LocalFunction = std::function<void(
    const LocalContext&, const std::vector<std::span<const double>>&,
    std::span<double>)>;

/// Process-wide named registry (the "injected into their namespace" step).
class LocalRegistry {
 public:
  static LocalRegistry& instance();

  void register_function(const std::string& name, LocalFunction fn);
  bool has(const std::string& name) const;
  // By value: a reference into the map could be invoked by one rank while
  // another rank re-registers the same name (the map slot is overwritten
  // under the lock, the call runs outside it).
  LocalFunction get(const std::string& name) const;
  std::vector<std::string> names() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, LocalFunction> fns_;
};

/// Global-level call of a registered local function (the paper: "when
/// called from the global level, a message is broadcast to all worker
/// nodes to call their local hypot function"). All arguments must be
/// conformable; the result shares their distribution. Collective.
template <class... Arrays>
DistArray<double> call_local(const std::string& name, const DistArray<double>& first,
                             const Arrays&... rest) {
  const LocalFunction fn = LocalRegistry::instance().get(name);
  ((void)require<ShapeError>(first.dist().conformable(rest.dist()),
                             "call_local: arguments must be conformable"),
   ...);
  DistArray<double> out(first.dist());
  LocalContext ctx{first.dist().rank(), first.dist().num_ranks(),
                   &first.dist().comm(), &first.dist()};
  std::vector<std::span<const double>> inputs{first.local_view(),
                                              rest.local_view()...};
  fn(ctx, inputs, out.local_view());
  return out;
}

}  // namespace pyhpc::odin
