// Shape and slice primitives for ODIN distributed arrays.
//
// Shapes are vectors of extents (row-major layout everywhere); Slice
// reproduces Python/NumPy slice semantics including negative indices and
// steps, because the paper's §III.G examples (`y[1:] - y[:-1]`) are written
// in exactly that vocabulary.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace pyhpc::odin {

using index_t = std::int64_t;

/// Row-major extents.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<index_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<index_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  int ndim() const { return static_cast<int>(dims_.size()); }
  index_t extent(int axis) const {
    require(axis >= 0 && axis < ndim(), "Shape: axis out of range");
    return dims_[static_cast<std::size_t>(axis)];
  }
  const std::vector<index_t>& dims() const { return dims_; }

  index_t count() const {
    index_t n = 1;
    for (auto d : dims_) n *= d;
    return n;
  }

  /// Row-major strides (in elements).
  std::vector<index_t> strides() const {
    std::vector<index_t> s(dims_.size(), 1);
    for (int a = ndim() - 2; a >= 0; --a) {
      s[static_cast<std::size_t>(a)] = s[static_cast<std::size_t>(a) + 1] *
                                       dims_[static_cast<std::size_t>(a) + 1];
    }
    return s;
  }

  /// Multi-index -> linear offset.
  index_t linearize(const std::vector<index_t>& idx) const {
    require(idx.size() == dims_.size(), "Shape: index rank mismatch");
    index_t off = 0;
    for (int a = 0; a < ndim(); ++a) {
      const index_t i = idx[static_cast<std::size_t>(a)];
      require(i >= 0 && i < dims_[static_cast<std::size_t>(a)],
              "Shape: index out of bounds");
      off = off * dims_[static_cast<std::size_t>(a)] + i;
    }
    return off;
  }

  /// Linear offset -> multi-index.
  std::vector<index_t> delinearize(index_t off) const {
    std::vector<index_t> idx(dims_.size(), 0);
    for (int a = ndim() - 1; a >= 0; --a) {
      const index_t d = dims_[static_cast<std::size_t>(a)];
      idx[static_cast<std::size_t>(a)] = off % d;
      off /= d;
    }
    return idx;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const {
    std::vector<std::string> parts;
    parts.reserve(dims_.size());
    for (auto d : dims_) parts.push_back(std::to_string(d));
    return "(" + util::join(parts, ", ") + ")";
  }

 private:
  void validate() const {
    for (auto d : dims_) {
      require(d >= 0, "Shape: negative extent");
    }
  }
  std::vector<index_t> dims_;
};

/// Python-semantics slice: [start:stop:step] with negatives and omitted
/// bounds. kNone marks an omitted bound.
struct Slice {
  static constexpr index_t kNone = std::numeric_limits<index_t>::min();

  index_t start = kNone;
  index_t stop = kNone;
  index_t step = 1;

  static Slice all() { return Slice{}; }
  static Slice from(index_t start) { return Slice{start, kNone, 1}; }
  static Slice to(index_t stop) { return Slice{kNone, stop, 1}; }
  static Slice range(index_t start, index_t stop, index_t step = 1) {
    return Slice{start, stop, step};
  }

  /// Resolved, always-forward-representable slice on an extent n: first
  /// index, number of elements, and step (possibly negative).
  struct Resolved {
    index_t first = 0;
    index_t count = 0;
    index_t step = 1;

    index_t global_of(index_t k) const { return first + k * step; }
  };

  /// Python's slice.indices(n) semantics.
  Resolved resolve(index_t n) const {
    require(step != 0, "Slice: step must be nonzero");
    Resolved r;
    r.step = step;
    if (step > 0) {
      index_t lo = (start == kNone) ? 0 : norm(start, n, 0, n);
      index_t hi = (stop == kNone) ? n : norm(stop, n, 0, n);
      r.first = lo;
      r.count = hi > lo ? (hi - lo + step - 1) / step : 0;
    } else {
      index_t lo = (start == kNone) ? n - 1 : norm(start, n, -1, n - 1);
      index_t hi = (stop == kNone) ? -1 : norm(stop, n, -1, n - 1);
      r.first = lo;
      r.count = lo > hi ? (lo - hi - step - 1) / (-step) : 0;
    }
    return r;
  }

 private:
  // Normalizes a possibly negative index into [lo_clamp, hi_clamp].
  static index_t norm(index_t i, index_t n, index_t lo_clamp,
                      index_t hi_clamp) {
    if (i < 0) i += n;
    if (i < lo_clamp) i = lo_clamp;
    if (i > hi_clamp) i = hi_clamp;
    return i;
  }
};

}  // namespace pyhpc::odin
