// Driver-as-a-service (ROADMAP item 1, DESIGN.md §10): one persistent
// hardened DriverContext serving many concurrent client sessions — the
// paper's millions-of-users scenario scaled down to threads. The pPython
// and Charm4Py server-runtime comparisons in PAPERS.md show control-plane
// batching and per-client scheduling dominating latency under concurrent
// load; this layer supplies both.
//
//  - Session multiplexing: ServiceContext owns the DriverContext and hands
//    out Session handles. Every control message carries the session id;
//    workers namespace array ids per session, so sessions cannot read or
//    clobber each other's arrays, and reduce replies travel on
//    session-tagged reply tags so one session's partials can never be
//    matched by another's collection loop.
//  - Admission control: each session has a bounded submit queue. On
//    overflow the policy is shed (QueueFullError, the op never queued) or
//    park (the submitting thread drains the backlog itself, then queues) —
//    either way a flooding session cannot starve the others, because
//    dispatch drains queues round-robin with a bounded per-session quantum.
//  - Coalescing: submissions buffer locally and ship as one sequenced
//    payload per worker when a size window (batch_messages) or time window
//    (batch_window) fills — the paper's "several messages can be buffered
//    and sent at once", applied across sessions automatically.
//
// Threading model: caller-runs dispatch. There is no service thread; one
// mutex serializes every entry point, and whichever client thread trips a
// flush executes the wire protocol itself. Client threads (on rank 0)
// block only on that mutex and on their own reduces — TSan-clean by
// construction, and the comm substrate is only ever touched by one thread
// at a time per rank.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "odin/driver.hpp"

namespace pyhpc::odin {

/// What a submit does when the session's queue is full.
enum class OverloadPolicy {
  /// Reject with QueueFullError; the op is never queued or executed.
  kShed,
  /// The submitting thread flushes the backlog itself (blocks for the wire
  /// round-trip), then queues. Completes eventually, sheds nothing.
  kPark,
};

struct ServiceOptions {
  /// Control-plane reliability policy for the owned DriverContext.
  DriverOptions driver;
  /// Bound on each session's local submit queue.
  std::size_t session_queue_limit = 256;
  OverloadPolicy overload = OverloadPolicy::kShed;
  /// Coalescing windows: a flush triggers when the total queued messages
  /// reach batch_messages, or when the oldest queued message has waited
  /// batch_window (checked at submit time — caller-runs, no timer thread).
  std::chrono::microseconds batch_window{200};
  std::size_t batch_messages = 64;
  /// Max messages drained from one session per round-robin turn.
  std::size_t session_quantum = 16;
};

class ServiceContext;

/// Client handle for one session. Movable, not copyable; destruction
/// best-effort closes the session (errors swallowed — use close() to see
/// them). All methods are thread-safe across distinct sessions; a single
/// Session is meant for one client thread.
class Session {
 public:
  Session() = default;
  Session(Session&& other) noexcept
      : svc_(other.svc_), id_(other.id_) {
    other.svc_ = nullptr;
  }
  Session& operator=(Session&& other) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  ~Session();

  bool valid() const { return svc_ != nullptr; }
  std::int32_t id() const { return id_; }

  int create_random(std::int64_t n, std::uint64_t seed);
  int create_full(std::int64_t n, double value);
  int unary(const std::string& ufunc, int a);
  int binary(const std::string& ufunc, int a, int b);
  int axpy(double alpha, int x, int y);
  int block_solve(int b);
  void free_array(int id);
  /// Synchronous: flushes this session's queue (and everything coalesced
  /// with it) and collects the partials on this session's reply tag.
  double reduce_sum(int a);
  /// Force the coalescing window closed now.
  void flush();
  /// Ship a kCloseSession (workers drop this session's segments) and
  /// invalidate the handle. Idempotent.
  void close();

 private:
  friend class ServiceContext;
  Session(ServiceContext* svc, std::int32_t id) : svc_(svc), id_(id) {}
  ServiceContext* svc_ = nullptr;
  std::int32_t id_ = 0;
};

/// The service: owns the hardened DriverContext, multiplexes sessions over
/// it. Construct on every rank (same options); rank 0 opens sessions,
/// ranks > 0 call worker_loop().
class ServiceContext {
 public:
  ServiceContext(comm::Communicator& comm, const ServiceOptions& options);

  bool is_driver() const { return driver_.is_driver(); }
  int num_workers() const { return driver_.num_workers(); }

  /// Workers: serve control messages until shutdown() ships.
  void worker_loop() { driver_.worker_loop(); }

  /// Driver side: open a new session (thread-safe).
  Session open_session();

  /// Flush every queue, then ship shutdown to the workers.
  void shutdown();

  // ---- introspection (tests, bench assertions) --------------------------

  std::size_t open_sessions() const;
  /// Messages currently buffered across all session queues.
  std::size_t pending_messages() const;
  std::uint64_t messages_submitted() const;
  std::uint64_t batches_shipped() const;
  std::uint64_t sheds() const;
  std::uint64_t parks() const;
  const util::SetupCache& setup_cache() const { return driver_.setup_cache(); }
  DriverContext& driver() { return driver_; }

 private:
  friend class Session;

  struct SessionState {
    std::deque<ControlMessage> queue;
    std::int32_t next_array_id = 1;
    bool open = true;
  };

  // All private helpers require mu_ held.
  SessionState& state_locked(std::int32_t sid);
  void submit_locked(std::int32_t sid, ControlMessage msg);
  void maybe_flush_locked();
  void flush_locked();

  // Session-facing entry points (each takes mu_).
  int op(std::int32_t sid, ControlMessage msg, bool fresh_result);
  double reduce(std::int32_t sid, int a);
  void flush_session(std::int32_t sid);
  void close_session(std::int32_t sid);

  ServiceOptions opts_;
  DriverContext driver_;

  mutable std::mutex mu_;
  std::map<std::int32_t, SessionState> sessions_;
  std::int32_t next_session_ = 1;
  std::size_t queued_total_ = 0;
  std::size_t rr_cursor_ = 0;  // fairness: which session starts the drain
  std::chrono::steady_clock::time_point window_start_{};
  std::uint64_t submitted_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t parks_ = 0;
};

}  // namespace pyhpc::odin
