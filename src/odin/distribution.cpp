#include "odin/distribution.hpp"

#include <algorithm>
#include <numeric>

namespace pyhpc::odin {

std::vector<index_t> Distribution::uniform_offsets(index_t n, int p) {
  std::vector<index_t> off(static_cast<std::size_t>(p) + 1, 0);
  const index_t chunk = n / p;
  const index_t rem = n % p;
  for (int r = 0; r < p; ++r) {
    off[static_cast<std::size_t>(r) + 1] =
        off[static_cast<std::size_t>(r)] + chunk + (r < rem ? 1 : 0);
  }
  return off;
}

void Distribution::finalize() {
  // Establish the axis -> grid-dimension assignment from specs_ (axes with
  // procs > 1 or explicitly distributed schemes take a grid dim in axis
  // order) and validate the grid size.
  axis_grid_dim_.assign(static_cast<std::size_t>(shape_.ndim()), -1);
  grid_.clear();
  int total = 1;
  for (int a = 0; a < shape_.ndim(); ++a) {
    auto& spec = specs_[static_cast<std::size_t>(a)];
    if (spec.scheme == Scheme::kReplicated) continue;
    axis_grid_dim_[static_cast<std::size_t>(a)] =
        static_cast<int>(grid_.size());
    grid_.push_back(spec.procs);
    total *= spec.procs;
  }
  require(total == comm_->size() || (grid_.empty() && comm_->size() >= 1),
          util::cat("Distribution: process grid covers ", total,
                    " ranks but the communicator has ", comm_->size()));
}

Distribution Distribution::block(comm::Communicator& comm, Shape shape,
                                 int axis) {
  require(axis >= 0 && axis < shape.ndim(), "Distribution::block: bad axis");
  Distribution d(comm, shape);
  d.specs_.assign(static_cast<std::size_t>(shape.ndim()), AxisSpec{});
  AxisSpec& spec = d.specs_[static_cast<std::size_t>(axis)];
  spec.scheme = Scheme::kBlock;
  spec.procs = comm.size();
  spec.offsets = uniform_offsets(shape.extent(axis), comm.size());
  d.finalize();
  return d;
}

Distribution Distribution::explicit_block(comm::Communicator& comm,
                                          Shape shape, int axis,
                                          const std::vector<index_t>& sizes) {
  require(axis >= 0 && axis < shape.ndim(),
          "Distribution::explicit_block: bad axis");
  require(sizes.size() == static_cast<std::size_t>(comm.size()),
          "Distribution::explicit_block: need one size per rank");
  index_t total = 0;
  for (auto s : sizes) {
    require(s >= 0, "Distribution::explicit_block: negative section size");
    total += s;
  }
  require(total == shape.extent(axis),
          "Distribution::explicit_block: sizes must sum to the axis extent");
  Distribution d(comm, shape);
  d.specs_.assign(static_cast<std::size_t>(shape.ndim()), AxisSpec{});
  AxisSpec& spec = d.specs_[static_cast<std::size_t>(axis)];
  spec.scheme = Scheme::kExplicit;
  spec.procs = comm.size();
  spec.offsets.assign(static_cast<std::size_t>(comm.size()) + 1, 0);
  for (int r = 0; r < comm.size(); ++r) {
    spec.offsets[static_cast<std::size_t>(r) + 1] =
        spec.offsets[static_cast<std::size_t>(r)] +
        sizes[static_cast<std::size_t>(r)];
  }
  d.finalize();
  return d;
}

Distribution Distribution::cyclic(comm::Communicator& comm, Shape shape,
                                  int axis) {
  require(axis >= 0 && axis < shape.ndim(), "Distribution::cyclic: bad axis");
  Distribution d(comm, shape);
  d.specs_.assign(static_cast<std::size_t>(shape.ndim()), AxisSpec{});
  AxisSpec& spec = d.specs_[static_cast<std::size_t>(axis)];
  spec.scheme = Scheme::kCyclic;
  spec.procs = comm.size();
  d.finalize();
  return d;
}

Distribution Distribution::block_cyclic(comm::Communicator& comm, Shape shape,
                                        int axis, index_t b) {
  require(axis >= 0 && axis < shape.ndim(),
          "Distribution::block_cyclic: bad axis");
  require(b >= 1, "Distribution::block_cyclic: block size must be >= 1");
  Distribution d(comm, shape);
  d.specs_.assign(static_cast<std::size_t>(shape.ndim()), AxisSpec{});
  AxisSpec& spec = d.specs_[static_cast<std::size_t>(axis)];
  spec.scheme = Scheme::kBlockCyclic;
  spec.procs = comm.size();
  spec.block = b;
  d.finalize();
  return d;
}

Distribution Distribution::block_grid(comm::Communicator& comm, Shape shape,
                                      const std::vector<int>& axes,
                                      const std::vector<int>& grid) {
  require(axes.size() == grid.size(),
          "Distribution::block_grid: axes/grid size mismatch");
  Distribution d(comm, shape);
  d.specs_.assign(static_cast<std::size_t>(shape.ndim()), AxisSpec{});
  for (std::size_t k = 0; k < axes.size(); ++k) {
    const int axis = axes[k];
    require(axis >= 0 && axis < shape.ndim(),
            "Distribution::block_grid: bad axis");
    AxisSpec& spec = d.specs_[static_cast<std::size_t>(axis)];
    require(spec.scheme == Scheme::kReplicated,
            "Distribution::block_grid: axis listed twice");
    require(grid[k] >= 1, "Distribution::block_grid: bad grid extent");
    spec.scheme = Scheme::kBlock;
    spec.procs = grid[k];
    spec.offsets = uniform_offsets(shape.extent(axis), grid[k]);
  }
  d.finalize();
  return d;
}

Distribution Distribution::replicated(comm::Communicator& comm, Shape shape) {
  Distribution d(comm, shape);
  d.specs_.assign(static_cast<std::size_t>(shape.ndim()), AxisSpec{});
  d.finalize();
  return d;
}

std::vector<int> Distribution::grid_coords(int rank) const {
  std::vector<int> coords(grid_.size(), 0);
  for (int g = static_cast<int>(grid_.size()) - 1; g >= 0; --g) {
    coords[static_cast<std::size_t>(g)] =
        rank % grid_[static_cast<std::size_t>(g)];
    rank /= grid_[static_cast<std::size_t>(g)];
  }
  return coords;
}

int Distribution::rank_of_coords(const std::vector<int>& coords) const {
  int rank = 0;
  for (std::size_t g = 0; g < grid_.size(); ++g) {
    rank = rank * grid_[g] + coords[g];
  }
  return rank;
}

int Distribution::axis_owner(int axis, index_t g) const {
  const AxisSpec& spec = specs_[static_cast<std::size_t>(axis)];
  switch (spec.scheme) {
    case Scheme::kReplicated:
      return 0;
    case Scheme::kBlock:
    case Scheme::kExplicit: {
      auto it = std::upper_bound(spec.offsets.begin(), spec.offsets.end(), g);
      return static_cast<int>(it - spec.offsets.begin()) - 1;
    }
    case Scheme::kCyclic:
      return static_cast<int>(g % spec.procs);
    case Scheme::kBlockCyclic:
      return static_cast<int>((g / spec.block) % spec.procs);
  }
  return 0;
}

index_t Distribution::axis_local(int axis, index_t g) const {
  const AxisSpec& spec = specs_[static_cast<std::size_t>(axis)];
  switch (spec.scheme) {
    case Scheme::kReplicated:
      return g;
    case Scheme::kBlock:
    case Scheme::kExplicit:
      return g - spec.offsets[static_cast<std::size_t>(axis_owner(axis, g))];
    case Scheme::kCyclic:
      return g / spec.procs;
    case Scheme::kBlockCyclic: {
      const index_t superblock = spec.block * spec.procs;
      return (g / superblock) * spec.block + g % spec.block;
    }
  }
  return g;
}

index_t Distribution::axis_global(int axis, int c, index_t l) const {
  const AxisSpec& spec = specs_[static_cast<std::size_t>(axis)];
  switch (spec.scheme) {
    case Scheme::kReplicated:
      return l;
    case Scheme::kBlock:
    case Scheme::kExplicit:
      return spec.offsets[static_cast<std::size_t>(c)] + l;
    case Scheme::kCyclic:
      return l * spec.procs + c;
    case Scheme::kBlockCyclic: {
      const index_t superblock = spec.block * spec.procs;
      return (l / spec.block) * superblock + c * spec.block + l % spec.block;
    }
  }
  return l;
}

index_t Distribution::axis_count(int axis, int c) const {
  const AxisSpec& spec = specs_[static_cast<std::size_t>(axis)];
  const index_t n = shape_.extent(axis);
  switch (spec.scheme) {
    case Scheme::kReplicated:
      return n;
    case Scheme::kBlock:
    case Scheme::kExplicit:
      return spec.offsets[static_cast<std::size_t>(c) + 1] -
             spec.offsets[static_cast<std::size_t>(c)];
    case Scheme::kCyclic: {
      const index_t base = n / spec.procs;
      return base + (c < static_cast<int>(n % spec.procs) ? 1 : 0);
    }
    case Scheme::kBlockCyclic: {
      const index_t superblock = spec.block * spec.procs;
      const index_t full_super = n / superblock;
      index_t count = full_super * spec.block;
      const index_t tail = n % superblock;
      const index_t tail_start = static_cast<index_t>(c) * spec.block;
      if (tail > tail_start) {
        count += std::min(spec.block, tail - tail_start);
      }
      return count;
    }
  }
  return n;
}

Shape Distribution::local_shape_for(int rank) const {
  const auto coords = grid_coords(rank);
  std::vector<index_t> dims(static_cast<std::size_t>(shape_.ndim()), 0);
  for (int a = 0; a < shape_.ndim(); ++a) {
    const int gd = axis_grid_dim_[static_cast<std::size_t>(a)];
    const int c = gd < 0 ? 0 : coords[static_cast<std::size_t>(gd)];
    dims[static_cast<std::size_t>(a)] = axis_count(a, c);
  }
  return Shape(std::move(dims));
}

std::pair<int, index_t> Distribution::owner_of(
    const std::vector<index_t>& gidx) const {
  require(gidx.size() == static_cast<std::size_t>(shape_.ndim()),
          "Distribution::owner_of: index rank mismatch");
  std::vector<int> coords(grid_.size(), 0);
  std::vector<index_t> lidx(static_cast<std::size_t>(shape_.ndim()), 0);
  for (int a = 0; a < shape_.ndim(); ++a) {
    const index_t g = gidx[static_cast<std::size_t>(a)];
    require(g >= 0 && g < shape_.extent(a),
            "Distribution::owner_of: index out of bounds");
    const int gd = axis_grid_dim_[static_cast<std::size_t>(a)];
    if (gd >= 0) {
      coords[static_cast<std::size_t>(gd)] = axis_owner(a, g);
    }
    lidx[static_cast<std::size_t>(a)] = axis_local(a, g);
  }
  const int owner = rank_of_coords(coords);
  return {owner, local_shape_for(owner).linearize(lidx)};
}

std::vector<std::pair<int, index_t>> Distribution::owners_of(
    const std::vector<index_t>& gidx) const {
  const auto primary = owner_of(gidx);
  // finalize() guarantees a non-empty grid covers the communicator
  // exactly, so replicas exist only when the grid is empty (every axis
  // replicated) — then each rank holds the element at the same offset.
  if (!grid_.empty() || comm_->size() == 1) return {primary};
  std::vector<std::pair<int, index_t>> all;
  all.reserve(static_cast<std::size_t>(comm_->size()));
  for (int q = 0; q < comm_->size(); ++q) {
    all.emplace_back(q, primary.second);
  }
  return all;
}

std::vector<index_t> Distribution::global_of_local_for(
    int rank, index_t local_linear) const {
  const auto coords = grid_coords(rank);
  const Shape lshape = local_shape_for(rank);
  auto lidx = lshape.delinearize(local_linear);
  std::vector<index_t> gidx(lidx.size(), 0);
  for (int a = 0; a < shape_.ndim(); ++a) {
    const int gd = axis_grid_dim_[static_cast<std::size_t>(a)];
    const int c = gd < 0 ? 0 : coords[static_cast<std::size_t>(gd)];
    gidx[static_cast<std::size_t>(a)] =
        axis_global(a, c, lidx[static_cast<std::size_t>(a)]);
  }
  return gidx;
}

std::vector<index_t> Distribution::global_of_local(index_t local_linear) const {
  return global_of_local_for(rank(), local_linear);
}

std::string Distribution::describe() const {
  std::vector<std::string> parts;
  for (int a = 0; a < shape_.ndim(); ++a) {
    const AxisSpec& spec = specs_[static_cast<std::size_t>(a)];
    switch (spec.scheme) {
      case Scheme::kReplicated: parts.push_back("*"); break;
      case Scheme::kBlock: parts.push_back("b" + std::to_string(spec.procs)); break;
      case Scheme::kExplicit: parts.push_back("e" + std::to_string(spec.procs)); break;
      case Scheme::kCyclic: parts.push_back("c" + std::to_string(spec.procs)); break;
      case Scheme::kBlockCyclic:
        parts.push_back("bc" + std::to_string(spec.procs) + "x" +
                        std::to_string(spec.block));
        break;
    }
  }
  return "Dist" + shape_.to_string() + "[" + util::join(parts, ",") + "]";
}

std::vector<int> redistribution_targets(const Distribution& from,
                                        const Distribution& to) {
  require<ShapeError>(from.global_shape() == to.global_shape(),
                      "redistribution: global shapes differ");
  const index_t n = from.local_count();
  std::vector<int> targets(static_cast<std::size_t>(n), 0);
  for (index_t l = 0; l < n; ++l) {
    const auto gidx = from.global_of_local(l);
    targets[static_cast<std::size_t>(l)] = to.owner_of(gidx).first;
  }
  return targets;
}

}  // namespace pyhpc::odin
