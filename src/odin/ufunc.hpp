// ODIN's built-in ufunc library (§III: "built-in functions that work with
// distributed arrays, and a framework for creating new functions").
//
// Unary ufuncs parallelize trivially (§III.D); binary ufuncs are local for
// conformable operands and redistribute otherwise through
// DistArray::zip's conform strategies.
//
// The registry lets user code add new named ufuncs — the "framework for
// creating new functions" — and lets the driver-mode architecture (Fig 1)
// dispatch them by name in a tens-of-bytes control message.
#pragma once

#include <cmath>
#include <functional>
#include <map>
#include <string>

#include "odin/dist_array.hpp"

namespace pyhpc::odin {

// ---- direct unary ufuncs --------------------------------------------------

template <class T>
DistArray<T> sin(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return std::sin(x); });
}
template <class T>
DistArray<T> cos(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return std::cos(x); });
}
template <class T>
DistArray<T> sqrt(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return std::sqrt(x); });
}
template <class T>
DistArray<T> exp(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return std::exp(x); });
}
template <class T>
DistArray<T> log(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return std::log(x); });
}
template <class T>
DistArray<T> abs(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return std::abs(x); });
}
template <class T>
DistArray<T> square(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return x * x; });
}
template <class T>
DistArray<T> negate(const DistArray<T>& a) {
  return a.map([](T x) noexcept { return -x; });
}

// ---- direct binary ufuncs --------------------------------------------------

// hypot follows the paper's definition sqrt(x^2 + y^2) rather than
// std::hypot: the naive form is straight-line mul/add/sqrt, so the SIMD
// execution space can vectorize it (a libm call cannot be), at the cost
// of overflow protection above ~1e154 — callers in that range (e.g. the
// solvers' Givens rotations) use std::hypot directly.
template <class T>
DistArray<T> hypot(const DistArray<T>& a, const DistArray<T>& b,
                   ConformStrategy strategy = ConformStrategy::kAuto) {
  return a.zip(
      b, [](T x, T y) noexcept { return std::sqrt(x * x + y * y); }, strategy);
}
template <class T>
DistArray<T> pow(const DistArray<T>& a, const DistArray<T>& b,
                 ConformStrategy strategy = ConformStrategy::kAuto) {
  return a.zip(b, [](T x, T y) noexcept { return std::pow(x, y); }, strategy);
}
template <class T>
DistArray<T> minimum(const DistArray<T>& a, const DistArray<T>& b,
                     ConformStrategy strategy = ConformStrategy::kAuto) {
  return a.zip(b, [](T x, T y) noexcept { return std::min(x, y); }, strategy);
}
template <class T>
DistArray<T> maximum(const DistArray<T>& a, const DistArray<T>& b,
                     ConformStrategy strategy = ConformStrategy::kAuto) {
  return a.zip(b, [](T x, T y) noexcept { return std::max(x, y); }, strategy);
}

/// Elementwise select: out[i] = cond[i] != 0 ? a[i] : b[i] (NumPy's where).
/// All three arrays must share one distribution (redistribute first
/// otherwise); no communication.
template <class T>
DistArray<T> where(const DistArray<T>& cond, const DistArray<T>& a,
                   const DistArray<T>& b) {
  require<ShapeError>(cond.dist().conformable(a.dist()) &&
                          cond.dist().conformable(b.dist()),
                      "where: cond/a/b must be conformable");
  auto out = DistArray<T>::uninitialized(cond.dist());
  const T* cv = cond.local_view().data();
  const T* av = a.local_view().data();
  const T* bv = b.local_view().data();
  T* ov = out.local_view().data();
  // Element body → the SIMD backend may vectorize the select (a blend).
  util::exec::for_each(util::exec::default_space(), 0,
                       static_cast<std::int64_t>(out.local_view().size()),
                       util::kDefaultGrain, [cv, av, bv, ov](std::int64_t i) noexcept {
                         ov[i] = cv[i] != T{0} ? av[i] : bv[i];
                       });
  return out;
}

/// Comparison ufuncs producing 0/1 masks (for where()).
template <class T>
DistArray<T> greater(const DistArray<T>& a, const DistArray<T>& b,
                     ConformStrategy strategy = ConformStrategy::kAuto) {
  return a.zip(b, [](T x, T y) noexcept { return x > y ? T{1} : T{0}; }, strategy);
}
template <class T>
DistArray<T> less(const DistArray<T>& a, const DistArray<T>& b,
                  ConformStrategy strategy = ConformStrategy::kAuto) {
  return a.zip(b, [](T x, T y) noexcept { return x < y ? T{1} : T{0}; }, strategy);
}

// ---- named registry ---------------------------------------------------------

/// Registry of named ufuncs over double arrays. Names are how the Fig-1
/// driver ships operations to workers, and how user extensions plug in.
class UfuncRegistry {
 public:
  using Unary = std::function<double(double)>;
  using Binary = std::function<double(double, double)>;

  /// The registry of built-ins (sin, cos, sqrt, exp, log, abs, square, neg;
  /// add, sub, mul, div, hypot, pow, min, max).
  static UfuncRegistry& builtin();

  void register_unary(const std::string& name, Unary fn) {
    unary_[name] = std::move(fn);
  }
  void register_binary(const std::string& name, Binary fn) {
    binary_[name] = std::move(fn);
  }

  bool has_unary(const std::string& name) const {
    return unary_.count(name) > 0;
  }
  bool has_binary(const std::string& name) const {
    return binary_.count(name) > 0;
  }

  const Unary& unary(const std::string& name) const {
    auto it = unary_.find(name);
    require(it != unary_.end(), "UfuncRegistry: no unary ufunc '" + name + "'");
    return it->second;
  }
  const Binary& binary(const std::string& name) const {
    auto it = binary_.find(name);
    require(it != binary_.end(),
            "UfuncRegistry: no binary ufunc '" + name + "'");
    return it->second;
  }

  DistArray<double> apply(const std::string& name,
                          const DistArray<double>& a) const {
    const auto& fn = unary(name);
    return a.map([&fn](double x) { return fn(x); });
  }

  DistArray<double> apply(const std::string& name, const DistArray<double>& a,
                          const DistArray<double>& b,
                          ConformStrategy strategy =
                              ConformStrategy::kAuto) const {
    const auto& fn = binary(name);
    return a.zip(b, [&fn](double x, double y) { return fn(x, y); }, strategy);
  }

 private:
  std::map<std::string, Unary> unary_;
  std::map<std::string, Binary> binary_;
};

}  // namespace pyhpc::odin
