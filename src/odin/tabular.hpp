// Distributed tabular data and map-reduce (§III.I: "ODIN supports
// distributed structured or tabular data sets, building on the powerful
// dtype features of NumPy. In combination with ODIN's distributed function
// interface, distributed structured arrays provide the fundamental
// components for parallel Map-Reduce style computations").
//
// DistTable<Record> holds a 1D block-distributed sequence of
// trivially-copyable records; map_reduce shuffles (key, value) pairs to
// their reducer rank (hash partitioning via alltoallv) and folds per key.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <type_traits>
#include <vector>

#include "comm/communicator.hpp"
#include "util/error.hpp"

namespace pyhpc::odin {

template <class Record>
class DistTable {
  static_assert(std::is_trivially_copyable_v<Record>,
                "DistTable records must be trivially copyable (dtype-like)");

 public:
  /// Builds a table from this rank's local rows.
  DistTable(comm::Communicator& comm, std::vector<Record> local_rows)
      : comm_(&comm), rows_(std::move(local_rows)) {}

  comm::Communicator& comm() const { return *comm_; }
  const std::vector<Record>& local_rows() const { return rows_; }
  std::vector<Record>& local_rows() { return rows_; }

  /// Global row count (collective).
  std::int64_t global_size() const {
    return comm_->allreduce_value<std::int64_t>(
        static_cast<std::int64_t>(rows_.size()), std::plus<std::int64_t>{});
  }

  /// Local filter; no communication.
  template <class Pred>
  DistTable filter(Pred&& pred) const {
    std::vector<Record> kept;
    for (const auto& r : rows_) {
      if (pred(r)) kept.push_back(r);
    }
    return DistTable(*comm_, std::move(kept));
  }

  /// Local per-row transform into another record type.
  template <class Out, class F>
  DistTable<Out> map(F&& f) const {
    std::vector<Out> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) out.push_back(f(r));
    return DistTable<Out>(*comm_, std::move(out));
  }

  /// Rebalances rows into near-equal chunks by global position
  /// (collective).
  DistTable rebalance() const {
    const int p = comm_->size();
    const auto counts =
        comm_->allgather_value<std::int64_t>(static_cast<std::int64_t>(rows_.size()));
    std::int64_t before = 0;
    for (int q = 0; q < comm_->rank(); ++q) {
      before += counts[static_cast<std::size_t>(q)];
    }
    std::int64_t total = before;
    for (int q = comm_->rank(); q < p; ++q) {
      total += counts[static_cast<std::size_t>(q)];
    }
    const std::int64_t chunk = total / p;
    const std::int64_t rem = total % p;
    auto owner_of = [&](std::int64_t gpos) {
      const std::int64_t boundary = (chunk + 1) * rem;
      if (gpos < boundary) return static_cast<int>(gpos / (chunk + 1));
      if (chunk == 0) return p - 1;
      return static_cast<int>(rem + (gpos - boundary) / chunk);
    };
    std::vector<std::vector<Record>> outgoing(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      outgoing[static_cast<std::size_t>(owner_of(
                   before + static_cast<std::int64_t>(i)))]
          .push_back(rows_[i]);
    }
    auto incoming = comm_->alltoallv(outgoing);
    std::vector<Record> mine;
    for (auto& part : incoming) {
      mine.insert(mine.end(), part.begin(), part.end());
    }
    return DistTable(*comm_, std::move(mine));
  }

 private:
  comm::Communicator* comm_;
  std::vector<Record> rows_;
};

/// Map-reduce over a distributed table. `mapper(row)` emits one (Key,
/// Value) pair per row (Key and Value trivially copyable); pairs are
/// shuffled to reducer ranks by hash(Key) % P; `reducer(acc, value)` folds
/// values per key. Every rank returns its owned (key, aggregate) pairs,
/// sorted by key. Collective.
template <class Key, class Value, class Record, class Mapper, class Reducer>
std::vector<std::pair<Key, Value>> map_reduce(const DistTable<Record>& table,
                                              Mapper&& mapper,
                                              Reducer&& reducer,
                                              Value init = Value{}) {
  static_assert(std::is_trivially_copyable_v<Key>);
  static_assert(std::is_trivially_copyable_v<Value>);
  auto& comm = table.comm();
  const int p = comm.size();

  struct KV {
    Key key;
    Value value;
  };

  // Map + local combine (the classic combiner optimization: pre-fold pairs
  // sharing a key before the shuffle).
  std::map<Key, Value> combined;
  for (const auto& row : table.local_rows()) {
    const auto [key, value] = mapper(row);
    auto [it, inserted] = combined.emplace(key, init);
    it->second = reducer(it->second, value);
  }

  std::hash<Key> hasher;
  std::vector<std::vector<KV>> outgoing(static_cast<std::size_t>(p));
  for (const auto& [key, value] : combined) {
    const int dest = static_cast<int>(hasher(key) % static_cast<std::size_t>(p));
    outgoing[static_cast<std::size_t>(dest)].push_back(KV{key, value});
  }
  auto incoming = comm.alltoallv(outgoing);

  std::map<Key, Value> folded;
  for (const auto& part : incoming) {
    for (const auto& kv : part) {
      auto [it, inserted] = folded.emplace(kv.key, init);
      it->second = reducer(it->second, kv.value);
    }
  }
  std::vector<std::pair<Key, Value>> out(folded.begin(), folded.end());
  return out;
}

}  // namespace pyhpc::odin
