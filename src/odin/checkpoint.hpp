// DistArray checkpoint adapters: local blocks are saved against the global
// row-major linear index space, so any distribution of the same global
// shape — including the post-shrink re-ranked one — can restore them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "odin/dist_array.hpp"
#include "util/checkpoint.hpp"

namespace pyhpc::odin {

namespace detail {

/// Row-major global linear index of a local linear offset.
template <class T>
inline std::int64_t global_linear(const DistArray<T>& a, index_t local) {
  const auto g = a.dist().global_of_local(local);
  std::int64_t lin = 0;
  for (int d = 0; d < a.ndim(); ++d) {
    lin = lin * static_cast<std::int64_t>(a.shape().extent(d)) +
          static_cast<std::int64_t>(g[static_cast<std::size_t>(d)]);
  }
  return lin;
}

/// Invokes fn(global_start, local_start, length) for each maximal run of
/// local elements that is contiguous in the global linear index space.
template <class T, class Fn>
inline void for_each_run(const DistArray<T>& a, Fn&& fn) {
  const index_t n = a.local_size();
  index_t run_start = 0;
  std::int64_t run_global = n > 0 ? global_linear(a, 0) : 0;
  for (index_t i = 1; i <= n; ++i) {
    const std::int64_t g =
        i < n ? global_linear(a, i) : std::int64_t{-2};  // forced break
    if (g != run_global + (i - run_start)) {
      fn(run_global, run_start, i - run_start);
      run_start = i;
      run_global = g;
    }
  }
}

}  // namespace detail

/// Saves this rank's block of `a` under (key, version). Local; every rank
/// saves its own block, any distribution can restore.
template <class T>
inline void snapshot_dist_array(util::CheckpointStore& store,
                                const std::string& key, std::uint64_t version,
                                const DistArray<T>& a) {
  const auto view = a.local_view();
  std::vector<double> run;
  detail::for_each_run(a, [&](std::int64_t g, index_t lo, index_t len) {
    run.assign(view.begin() + lo, view.begin() + lo + len);
    store.save(key, version, g, run.data(), run.size());
  });
}

/// Fills this rank's block of `a` from (key, version). Local. Throws
/// CheckpointError when the block is not fully covered.
template <class T>
inline void restore_dist_array(const util::CheckpointStore& store,
                               const std::string& key, std::uint64_t version,
                               DistArray<T>& a) {
  auto view = a.local_view();
  detail::for_each_run(a, [&](std::int64_t g, index_t lo, index_t len) {
    const auto vals = store.restore(key, version, g, g + len);
    for (index_t k = 0; k < len; ++k) {
      view[static_cast<std::size_t>(lo + k)] =
          static_cast<T>(vals[static_cast<std::size_t>(k)]);
    }
  });
}

}  // namespace pyhpc::odin
