// Intra-rank thread scaling of the pool-backed kernels: binary ufunc
// application, fused expression evaluation, and CrsMatrix SpMV at 1/2/4/8
// pool threads (CommConfig::threads), each at a small size below one
// grain (4096 elements for the elementwise kernels, 1024 rows for SpMV —
// exercising the serial fallback) and a large one (~1M).
//
// Interpretation: on a multi-core host the large sizes should scale with
// the thread count; on a single-core host (like the reference container)
// wall-clock is flat and the machine-independent pool counters
// (pool.regions / pool.tasks / pool.steals) carry the shape claim. The
// `reduce_bit_identical` counter on BM_ReduceDeterminism records that the
// deterministic parallel_reduce returned bit-identical sums across thread
// counts {1, 2, 4, 7} — the pool's core correctness invariant.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <cstdio>

#include "comm/runner.hpp"
#include "odin/expr.hpp"
#include "odin/ufunc.hpp"
#include "tpetra/crs_matrix.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace tp = pyhpc::tpetra;

using Arr = od::DistArray<double>;
using MapT = tp::Map<>;
using MatD = tp::CrsMatrix<double>;
using VecD = tp::Vector<double>;
using LO = std::int32_t;
using GO = std::int64_t;

namespace {

pc::CommConfig threaded(int threads) {
  pc::CommConfig config;
  config.threads = threads;
  return config;
}

void BM_UfuncBinaryThreads(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  pc::run(1, threaded(threads), [&state, n, threads](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    for (auto _ : state) {
      auto r = od::hypot(x, y);
      benchmark::DoNotOptimize(r.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.counters["threads"] = threads;
  });
}
BENCHMARK(BM_UfuncBinaryThreads)
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8});

void BM_FusedExprThreads(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  pc::run(1, threaded(threads), [&state, n, threads](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    for (auto _ : state) {
      auto r = od::eval(od::lazy(x) * 2.0 + od::lazy(y) * 3.0 + 1.0);
      benchmark::DoNotOptimize(r.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.counters["threads"] = threads;
  });
}
BENCHMARK(BM_FusedExprThreads)
    ->Args({4096, 1})
    ->Args({4096, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8});

void BM_SpmvThreads(benchmark::State& state) {
  const GO n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  pc::run(1, threaded(threads), [&state, n, threads](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, n);
    MatD a(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      std::vector<GO> cols;
      std::vector<double> vals;
      if (g > 0) {
        cols.push_back(g - 1);
        vals.push_back(-1.0);
      }
      cols.push_back(g);
      vals.push_back(2.0);
      if (g + 1 < n) {
        cols.push_back(g + 1);
        vals.push_back(-1.0);
      }
      a.insert_global_values(g, cols, vals);
    }
    a.fill_complete();
    VecD x(map, 1.0), y(map);
    for (auto _ : state) {
      a.apply(x, y);
      benchmark::DoNotOptimize(y.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    state.counters["threads"] = threads;
  });
}
BENCHMARK(BM_SpmvThreads)
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8});

// Determinism witness: DistArray::sum at thread counts {1, 2, 4, 7} must
// return bit-identical doubles. The result lands in the JSON report as the
// reduce_bit_identical counter (1 = held) and on stderr for the bench log.
void BM_ReduceDeterminism(benchmark::State& state) {
  const od::index_t n = 1 << 20;
  bool identical = true;
  std::uint64_t reference = 0;
  for (auto _ : state) {
    for (int threads : {1, 2, 4, 7}) {
      pc::run(1, threaded(threads),
              [&, threads](pc::Communicator& comm) {
                auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
                auto x = Arr::random(dist, 42);
                const auto bits = std::bit_cast<std::uint64_t>(x.sum());
                if (threads == 1) {
                  reference = bits;
                } else if (bits != reference) {
                  identical = false;
                }
              });
    }
  }
  state.counters["reduce_bit_identical"] = identical ? 1.0 : 0.0;
  std::fprintf(stderr,
               "BM_ReduceDeterminism: parallel_reduce sum bit-identical "
               "across threads {1,2,4,7}: %s\n",
               identical ? "yes" : "NO");
}
BENCHMARK(BM_ReduceDeterminism)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
