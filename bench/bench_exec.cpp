// Execution-space backend comparison on the three headline kernels —
// binary ufunc (hypot: sqrt-heavy, the SIMD showcase), fused expression
// evaluation, and CrsMatrix SpMV — each run under serial / pool /
// pool+SIMD (CommConfig::exec_space) × 1/2/4/8 pool threads. Per-element
// ns is items_processed / wall time in the JSON report; the PR 5 pool
// numbers (BENCH_PR5.json BM_*Threads, same sizes) are the comparison
// baseline.
//
// Sizes: one in-cache size (1<<17 doubles = 1 MiB working set for a
// binary kernel — compute-bound, where vector width shows directly) and
// one streaming size (1<<20 — memory-bandwidth-bound, where SIMD
// converges toward parity because loads dominate). On a single-core host
// (the reference container) the thread axis is flat and the backend axis
// carries the claim; the exec.* counters are machine-independent.
//
// BM_ExecReduceDeterminism extends the PR 5 witness across the backend
// axis: DistArray::sum must return bit-identical doubles for every
// (space, threads) combination — the exec layer's determinism contract.
#include <benchmark/benchmark.h>

#include <bit>
#include <cstdint>
#include <cstdio>

#include "comm/runner.hpp"
#include "odin/expr.hpp"
#include "odin/ufunc.hpp"
#include "tpetra/crs_matrix.hpp"
#include "util/exec_space.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace tp = pyhpc::tpetra;
namespace px = pyhpc::util::exec;

using Arr = od::DistArray<double>;
using MapT = tp::Map<>;
using MatD = tp::CrsMatrix<double>;
using VecD = tp::Vector<double>;
using LO = std::int32_t;
using GO = std::int64_t;

namespace {

constexpr px::Space kSpaces[] = {px::Space::kSerial, px::Space::kTaskPool,
                                 px::Space::kTaskPoolSimd};

pc::CommConfig configured(int threads, px::Space space) {
  pc::CommConfig config;
  config.threads = threads;
  config.exec_space = space;
  return config;
}

void annotate(benchmark::State& state, int threads, px::Space space) {
  state.counters["threads"] = threads;
  state.counters["space"] = static_cast<double>(space);
  state.SetLabel(px::space_name(space));
}

void BM_ExecUfunc(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const px::Space space = static_cast<px::Space>(state.range(2));
  pc::run(1, configured(threads, space), [&](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    for (auto _ : state) {
      auto r = od::hypot(x, y);
      benchmark::DoNotOptimize(r.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    annotate(state, threads, space);
  });
}

void BM_ExecFused(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const px::Space space = static_cast<px::Space>(state.range(2));
  pc::run(1, configured(threads, space), [&](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    for (auto _ : state) {
      auto r = od::eval(od::lazy(x) * 2.0 + od::lazy(y) * 3.0 + 1.0);
      benchmark::DoNotOptimize(r.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    annotate(state, threads, space);
  });
}

void BM_ExecSpmv(benchmark::State& state) {
  const GO n = state.range(0);
  const int threads = static_cast<int>(state.range(1));
  const px::Space space = static_cast<px::Space>(state.range(2));
  pc::run(1, configured(threads, space), [&](pc::Communicator& comm) {
    auto map = MapT::uniform(comm, n);
    MatD a(map);
    for (LO i = 0; i < map.num_local(); ++i) {
      const GO g = map.local_to_global(i);
      std::vector<GO> cols;
      std::vector<double> vals;
      if (g > 0) {
        cols.push_back(g - 1);
        vals.push_back(-1.0);
      }
      cols.push_back(g);
      vals.push_back(2.0);
      if (g + 1 < n) {
        cols.push_back(g + 1);
        vals.push_back(-1.0);
      }
      a.insert_global_values(g, cols, vals);
    }
    a.fill_complete();
    VecD x(map, 1.0), y(map);
    for (auto _ : state) {
      a.apply(x, y);
      benchmark::DoNotOptimize(y.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
    annotate(state, threads, space);
  });
}

void backend_args(benchmark::internal::Benchmark* b) {
  for (std::int64_t n : {std::int64_t{1} << 17, std::int64_t{1} << 20}) {
    for (int threads : {1, 2, 4, 8}) {
      for (px::Space space : kSpaces) {
        // The thread axis is meaningless for the serial space.
        if (space == px::Space::kSerial && threads != 1) continue;
        b->Args({n, threads, static_cast<std::int64_t>(space)});
      }
    }
  }
}

BENCHMARK(BM_ExecUfunc)->Apply(backend_args);
BENCHMARK(BM_ExecFused)->Apply(backend_args);
BENCHMARK(BM_ExecSpmv)->Apply(backend_args);

// Determinism witness across the backend axis: DistArray::sum (and a
// fused-expression sum) must be bit-identical for every (space, threads)
// pair. Lands in the JSON report as the exec_reduce_bit_identical counter.
void BM_ExecReduceDeterminism(benchmark::State& state) {
  const od::index_t n = 1 << 20;
  bool identical = true;
  std::uint64_t ref_sum = 0, ref_fused = 0;
  bool have_ref = false;
  for (auto _ : state) {
    for (int threads : {1, 2, 4, 7}) {
      for (px::Space space : kSpaces) {
        pc::run(1, configured(threads, space), [&](pc::Communicator& comm) {
          auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
          auto x = Arr::random(dist, 42);
          const auto s = std::bit_cast<std::uint64_t>(x.sum());
          const auto f = std::bit_cast<std::uint64_t>(
              od::sum(od::lazy(x) * 0.5 + 1.0));
          if (!have_ref) {
            ref_sum = s;
            ref_fused = f;
            have_ref = true;
          } else if (s != ref_sum || f != ref_fused) {
            identical = false;
          }
        });
      }
    }
  }
  state.counters["exec_reduce_bit_identical"] = identical ? 1.0 : 0.0;
  std::fprintf(stderr,
               "BM_ExecReduceDeterminism: reductions bit-identical across "
               "{serial,pool,simd} x threads {1,2,4,7}: %s\n",
               identical ? "yes" : "NO");
}
BENCHMARK(BM_ExecReduceDeterminism)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
