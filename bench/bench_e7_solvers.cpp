// E7 — the §II/V "massively parallel solves" claim: Krylov solvers on the
// 2D Laplacian with the preconditioner ladder, swept over problem size and
// rank count.
//
// Shapes to reproduce (standard Krylov/multigrid theory, which is what the
// paper's solver stack promises): unpreconditioned CG iterations grow ~
// like the grid dimension; ILU(0) reduces them by a constant factor; AMG
// iteration counts stay nearly flat as the problem grows. Byte counters
// show communication per iteration scaling with the boundary, not the
// volume.
#include <benchmark/benchmark.h>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "precond/amg.hpp"
#include "precond/preconditioner.hpp"
#include "solvers/krylov.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace pp = pyhpc::precond;
namespace sv = pyhpc::solvers;

namespace {

enum PrecondKind { kNone = 0, kJacobi = 1, kIlu0 = 2, kAmg = 3 };

const char* precond_name(int kind) {
  switch (kind) {
    case kJacobi: return "jacobi";
    case kIlu0: return "ilu0";
    case kAmg: return "amg";
    default: return "none";
  }
}

void BM_CgLaplace2d(benchmark::State& state) {
  const auto grid = state.range(0);  // grid x grid unknowns
  const int ranks = static_cast<int>(state.range(1));
  const int kind = static_cast<int>(state.range(2));
  int iterations = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(
        ranks, [grid, kind, &iterations](pc::Communicator& comm) {
          auto a = gl::laplace2d(comm, grid, grid);
          auto b = gl::rhs_for_ones(a);
          gl::Vector x(a.domain_map(), 0.0);
          std::unique_ptr<pp::Preconditioner> m;
          switch (kind) {
            case kJacobi:
              m = std::make_unique<pp::JacobiPreconditioner>(a);
              break;
            case kIlu0:
              m = std::make_unique<pp::Ilu0Preconditioner>(a);
              break;
            case kAmg:
              m = std::make_unique<pp::AmgPreconditioner>(a);
              break;
            default:
              break;
          }
          comm.stats().reset();
          sv::KrylovOptions opt;
          opt.max_iterations = 5000;
          auto res = sv::cg_solve(a, b, x, opt, m.get());
          if (comm.rank() == 0) iterations = res.iterations;
        });
    bytes = stats.coll_bytes_sent + stats.p2p_bytes_sent;
    benchmark::DoNotOptimize(bytes);
  }
  state.SetLabel(precond_name(kind));
  state.counters["iterations"] = iterations;
  state.counters["bytes_per_iter"] =
      iterations > 0 ? static_cast<double>(bytes) / iterations : 0.0;
}
BENCHMARK(BM_CgLaplace2d)
    // Size sweep at fixed preconditioner: iteration growth.
    ->Args({16, 2, kNone})
    ->Args({32, 2, kNone})
    ->Args({64, 2, kNone})
    ->Args({16, 2, kAmg})
    ->Args({32, 2, kAmg})
    ->Args({64, 2, kAmg})
    // Preconditioner ladder at fixed size.
    ->Args({48, 2, kNone})
    ->Args({48, 2, kJacobi})
    ->Args({48, 2, kIlu0})
    ->Args({48, 2, kAmg})
    // Rank sweep at fixed problem.
    ->Args({48, 1, kIlu0})
    ->Args({48, 4, kIlu0})
    ->Args({48, 8, kIlu0})
    ->Iterations(1);

void BM_GmresConvectionDiffusion(benchmark::State& state) {
  const auto grid = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  const int kind = static_cast<int>(state.range(2));
  int iterations = 0;
  for (auto _ : state) {
    pc::run(ranks, [grid, kind, &iterations](pc::Communicator& comm) {
      auto a = gl::convection_diffusion_2d(comm, grid, grid, 12.0, -7.0);
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(a.domain_map(), 0.0);
      std::unique_ptr<pp::Preconditioner> m;
      if (kind == kIlu0) m = std::make_unique<pp::Ilu0Preconditioner>(a);
      if (kind == kJacobi) m = std::make_unique<pp::JacobiPreconditioner>(a);
      sv::KrylovOptions opt;
      opt.max_iterations = 3000;
      auto res = sv::gmres_solve(a, b, x, opt, m.get());
      if (comm.rank() == 0) iterations = res.iterations;
    });
  }
  state.SetLabel(precond_name(kind));
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_GmresConvectionDiffusion)
    ->Args({32, 2, kNone})
    ->Args({32, 2, kJacobi})
    ->Args({32, 2, kIlu0})
    ->Iterations(1);

void BM_BicgstabVsGmres(benchmark::State& state) {
  const bool use_bicgstab = state.range(0) == 1;
  int iterations = 0;
  for (auto _ : state) {
    pc::run(2, [use_bicgstab, &iterations](pc::Communicator& comm) {
      auto a = gl::convection_diffusion_2d(comm, 28, 28, 6.0, 6.0);
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(a.domain_map(), 0.0);
      sv::KrylovOptions opt;
      opt.max_iterations = 3000;
      auto res = use_bicgstab ? sv::bicgstab_solve(a, b, x, opt)
                              : sv::gmres_solve(a, b, x, opt);
      if (comm.rank() == 0) iterations = res.iterations;
    });
  }
  state.SetLabel(use_bicgstab ? "bicgstab" : "gmres");
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_BicgstabVsGmres)->Arg(0)->Arg(1)->Iterations(1);

// AMG setup vs solve cost, and the prolongator-smoothing ablation
// (DESIGN.md §5: plain vs smoothed aggregation).
void BM_AmgSetupAblation(benchmark::State& state) {
  const bool smoothed = state.range(0) == 1;
  int iterations = 0;
  for (auto _ : state) {
    pc::run(2, [smoothed, &iterations](pc::Communicator& comm) {
      auto a = gl::laplace2d(comm, 48, 48);
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(a.domain_map(), 0.0);
      pp::AmgOptions opt;
      if (!smoothed) opt.prolongator_damping = 0.0;
      pp::AmgPreconditioner amg(a, opt);
      sv::KrylovOptions kopt;
      kopt.max_iterations = 2000;
      auto res = sv::cg_solve(a, b, x, kopt, &amg);
      if (comm.rank() == 0) iterations = res.iterations;
    });
  }
  state.SetLabel(smoothed ? "smoothed_aggregation" : "plain_aggregation");
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_AmgSetupAblation)->Arg(1)->Arg(0)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
