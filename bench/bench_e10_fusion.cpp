// E10 — the ODIN intro's optimization claim: "ODIN can optimize distributed
// array expressions. These optimizations include: loop fusion, ..."
//
// Ablation: a*x + b*y + c evaluated eagerly (NumPy semantics — one
// temporary array per operation) vs through the lazy expression layer
// (one fused pass, zero temporaries). Shape: fusion wins on large arrays
// where temporaries blow the cache and allocation cost matters; both are
// communication-free.
#include <benchmark/benchmark.h>

#include "comm/runner.hpp"
#include "odin/expr.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

namespace {

void BM_AxpbypcEager(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      // Eager: (x*2) -> temp1; (y*3) -> temp2; temp1+temp2 -> temp3;
      // temp3 + 1 -> result. Four local allocations and passes.
      auto r = x * 2.0 + y * 3.0 + 1.0;
      benchmark::DoNotOptimize(r.local_view().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AxpbypcEager)->Args({1 << 16, 1})->Args({1 << 21, 1})->Args({1 << 21, 4});

void BM_AxpbypcFused(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      auto r = od::eval(od::lazy(x) * 2.0 + od::lazy(y) * 3.0 + 1.0);
      benchmark::DoNotOptimize(r.local_view().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AxpbypcFused)->Args({1 << 16, 1})->Args({1 << 21, 1})->Args({1 << 21, 4});

// Longer chain where eager evaluation allocates 6 temporaries.
void BM_LongChainEager(benchmark::State& state) {
  const od::index_t n = state.range(0);
  for (auto _ : state) {
    pc::run(1, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      auto z = Arr::random(dist, 3);
      auto r = x * 1.5 + y * 2.5 + z * 3.5 + x * 0.5 + y;
      benchmark::DoNotOptimize(r.local_view().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LongChainEager)->Arg(1 << 21);

void BM_LongChainFused(benchmark::State& state) {
  const od::index_t n = state.range(0);
  for (auto _ : state) {
    pc::run(1, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      auto z = Arr::random(dist, 3);
      auto r = od::eval(od::lazy(x) * 1.5 + od::lazy(y) * 2.5 +
                        od::lazy(z) * 3.5 + od::lazy(x) * 0.5 + od::lazy(z));
      benchmark::DoNotOptimize(r.local_view().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LongChainFused)->Arg(1 << 21);

// Isolate the kernel cost (no array creation in the loop): pre-built
// arrays, repeated evaluation.
void BM_KernelOnlyEager(benchmark::State& state) {
  const od::index_t n = state.range(0);
  pc::run(1, [&state, n](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    for (auto _ : state) {
      auto r = x * 2.0 + y * 3.0 + 1.0;
      benchmark::DoNotOptimize(r.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
  });
}
BENCHMARK(BM_KernelOnlyEager)->Arg(1 << 21);

void BM_KernelOnlyFused(benchmark::State& state) {
  const od::index_t n = state.range(0);
  pc::run(1, [&state, n](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::random(dist, 1);
    auto y = Arr::random(dist, 2);
    for (auto _ : state) {
      auto r = od::eval(od::lazy(x) * 2.0 + od::lazy(y) * 3.0 + 1.0);
      benchmark::DoNotOptimize(r.local_view().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
  });
}
BENCHMARK(BM_KernelOnlyFused)->Arg(1 << 21);

}  // namespace

BENCHMARK_MAIN();
