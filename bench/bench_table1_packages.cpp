// T1 — Table I: "Trilinos packages included in PyTrilinos". One benchmark
// per package row, exercising this repo's analogue end-to-end; running the
// binary regenerates the table as (package, representative operation,
// time) rows.
//
//   Epetra      linear algebra vector and operator classes
//   EpetraExt   extensions (I/O, sparse transposes, ...)
//   Teuchos     general tools (parameter lists, XML I/O, ...)
//   TriUtils    testing utilities
//   Isorropia   partitioning algorithms
//   AztecOO     iterative Krylov-space linear solvers
//   Galeri      examples of common maps and matrices
//   Amesos      uniform interface to third-party direct solvers
//   Ifpack      algebraic preconditioners
//   Komplex     complex vectors/matrices via real objects
//   Anasazi     eigensolvers
//   ML          multi-level (algebraic multigrid) preconditioners
//   NOX         nonlinear solvers
#include <benchmark/benchmark.h>

#include <cstdio>

#include "comm/runner.hpp"
#include "epetraext/epetraext.hpp"
#include "galeri/gallery.hpp"
#include "isorropia/partition.hpp"
#include "komplex/komplex.hpp"
#include "precond/amg.hpp"
#include "precond/preconditioner.hpp"
#include "solvers/amesos.hpp"
#include "solvers/anasazi.hpp"
#include "solvers/krylov.hpp"
#include "solvers/nox.hpp"
#include "teuchos/parameter_list.hpp"
#include "teuchos/timer.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;

namespace {
constexpr int kRanks = 2;
constexpr std::int64_t kN = 512;

void BM_Epetra_VectorOps(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto map = gl::Map::uniform(comm, kN);
      gl::Vector x(map), y(map);
      x.randomize(1);
      y.randomize(2);
      y.update(2.0, x, 1.0);
      benchmark::DoNotOptimize(x.dot(y) + y.norm2());
    });
  }
}
BENCHMARK(BM_Epetra_VectorOps);

void BM_EpetraExt_Transpose(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::convection_diffusion_2d(comm, 20, 20, 3.0, -1.0);
      auto at = pyhpc::epetraext::transpose(a);
      benchmark::DoNotOptimize(at.num_global_entries());
    });
  }
}
BENCHMARK(BM_EpetraExt_Transpose);

void BM_Teuchos_ParameterListXml(benchmark::State& state) {
  for (auto _ : state) {
    pyhpc::teuchos::ParameterList pl("Solver");
    pl.set("tolerance", 1e-8);
    pl.sublist("ML").set("levels", 4);
    pl.sublist("ML").set("smoother", "jacobi");
    auto back = pyhpc::teuchos::ParameterList::from_xml(pl.to_xml());
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_Teuchos_ParameterListXml);

void BM_TriUtils_TimedTestHarness(benchmark::State& state) {
  // TriUtils-style harness: build a gallery problem, time phases, verify.
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      pyhpc::teuchos::Timer timer("harness");
      timer.start();
      auto a = gl::laplace1d(gl::Map::uniform(comm, kN));
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(a.domain_map(), 0.0);
      auto res = pyhpc::solvers::cg_solve(a, b, x);
      timer.stop();
      pyhpc::require(res.converged, "harness: solve failed");
      benchmark::DoNotOptimize(timer.total_seconds());
    });
  }
}
BENCHMARK(BM_TriUtils_TimedTestHarness);

void BM_Isorropia_Partition(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::laplace1d(gl::Map::uniform(comm, kN));
      auto newmap = pyhpc::isorropia::partition_by_nonzeros(a);
      benchmark::DoNotOptimize(newmap.num_local());
    });
  }
}
BENCHMARK(BM_Isorropia_Partition);

void BM_AztecOO_KrylovSolve(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::laplace1d(gl::Map::uniform(comm, kN));
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(a.domain_map(), 0.0);
      auto res = pyhpc::solvers::cg_solve(a, b, x);
      benchmark::DoNotOptimize(res.iterations);
    });
  }
}
BENCHMARK(BM_AztecOO_KrylovSolve);

void BM_Galeri_MatrixGallery(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::laplace2d(comm, 24, 24);
      auto c = gl::convection_diffusion_2d(comm, 12, 12, 2.0, 2.0);
      auto r = gl::random_diag_dominant(gl::Map::uniform(comm, 128), 4, 7);
      benchmark::DoNotOptimize(a.num_global_entries() +
                               c.num_global_entries() +
                               r.num_global_entries());
    });
  }
}
BENCHMARK(BM_Galeri_MatrixGallery);

void BM_Amesos_DirectSolve(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::tridiag(gl::Map::uniform(comm, kN), -1.0, 4.0, -1.0);
      auto b = gl::rhs_for_ones(a);
      gl::Vector x(a.domain_map());
      pyhpc::solvers::create_direct_solver("klu", a)->solve(b, x);
      benchmark::DoNotOptimize(x.norm2());
    });
  }
}
BENCHMARK(BM_Amesos_DirectSolve);

void BM_Ifpack_Ilu0Apply(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::laplace2d(comm, 20, 20);
      pyhpc::precond::Ilu0Preconditioner ilu(a);
      gl::Vector r(a.range_map()), z(a.domain_map());
      r.randomize(3);
      ilu.apply(r, z);
      benchmark::DoNotOptimize(z.norm2());
    });
  }
}
BENCHMARK(BM_Ifpack_Ilu0Apply);

void BM_Komplex_ComplexSolve(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto map = gl::Map::uniform(comm, 64);
      pyhpc::komplex::ComplexMatrix a(gl::laplace1d(map), gl::identity(map));
      pyhpc::komplex::ComplexVector b(map), x(map);
      for (std::int32_t i = 0; i < b.local_size(); ++i) b.set(i, {1.0, -1.0});
      auto res = a.solve(b, x);
      benchmark::DoNotOptimize(res.iterations);
    });
  }
}
BENCHMARK(BM_Komplex_ComplexSolve);

void BM_Anasazi_Lanczos(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::laplace1d(gl::Map::uniform(comm, 128));
      auto res = pyhpc::solvers::lanczos(a, 3);
      benchmark::DoNotOptimize(res.eigenvalues.data());
    });
  }
}
BENCHMARK(BM_Anasazi_Lanczos);

void BM_ML_AmgSetupAndApply(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto a = gl::laplace2d(comm, 24, 24);
      pyhpc::precond::AmgPreconditioner amg(a);
      gl::Vector r(a.range_map()), z(a.domain_map());
      r.randomize(5);
      amg.apply(r, z);
      benchmark::DoNotOptimize(z.norm2());
    });
  }
}
BENCHMARK(BM_ML_AmgSetupAndApply);

void BM_NOX_NewtonSolve(benchmark::State& state) {
  for (auto _ : state) {
    pc::run(kRanks, [](pc::Communicator& comm) {
      auto map = gl::Map::uniform(comm, 64);
      gl::Vector x(map, 2.0);
      auto res = pyhpc::solvers::newton_solve(
          [](const gl::Vector& u, gl::Vector& f) {
            for (std::int32_t i = 0; i < u.local_size(); ++i) {
              f[i] = u[i] * u[i] * u[i] + 2.0 * u[i] - 3.0;
            }
          },
          [](const gl::Vector& u) {
            gl::Matrix j(u.map());
            for (std::int32_t i = 0; i < u.local_size(); ++i) {
              const std::int64_t g = u.map().local_to_global(i);
              j.insert_global_value(g, g, 3.0 * u[i] * u[i] + 2.0);
            }
            j.fill_complete();
            return j;
          },
          x);
      benchmark::DoNotOptimize(res.iterations);
    });
  }
}
BENCHMARK(BM_NOX_NewtonSolve);

}  // namespace

BENCHMARK_MAIN();
