// PR3 — collective algorithm comparison: the root-funneled flat reference
// schedules (CollectiveAlgo::kLinear) against the scalable schedules kAuto
// resolves to (Rabenseifner allreduce, ring allgather, pairwise alltoallv)
// at 8 ranks with large payloads.
//
// The headline counters are rank 0's view, because rank 0 is where the
// linear schedules concentrate traffic:
//  - allreduce: root received bytes drop 4x at p=8 ((p-1)n flat reduce
//    funnel vs ~1.75n reduce-scatter + allgather);
//  - allgather: root *received* bytes are information-bound at (p-1)n for
//    any algorithm, but the gather+broadcast reference makes rank 0
//    retransmit the whole p*n concatenation to every rank, so root sent
//    bytes drop 8x and root total traffic 4.5x;
//  - alltoallv: already balanced in bytes; the pairwise schedule removes
//    the rank-ordered receive ladder (latency, not volume).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/runner.hpp"

namespace pc = pyhpc::comm;
using pc::CollectiveAlgo;

namespace {

constexpr int kRanks = 8;
constexpr std::size_t kElems = 1 << 16;  // 512 KiB of doubles per rank

struct RootStats {
  std::uint64_t recv_bytes = 0;
  std::uint64_t sent_bytes = 0;
};

void report(benchmark::State& state, const RootStats& root) {
  state.counters["root_coll_bytes_received"] =
      static_cast<double>(root.recv_bytes);
  state.counters["root_coll_bytes_sent"] = static_cast<double>(root.sent_bytes);
  state.counters["root_coll_bytes_total"] =
      static_cast<double>(root.recv_bytes + root.sent_bytes);
}

RootStats run_allreduce(CollectiveAlgo algo) {
  RootStats root;
  pc::run(kRanks, [&root, algo](pc::Communicator& comm) {
    std::vector<double> in(kElems, static_cast<double>(comm.rank() + 1));
    std::vector<double> out(kElems);
    comm.stats().reset();
    comm.allreduce(std::span<const double>(in), std::span<double>(out),
                   std::plus<double>{}, algo);
    benchmark::DoNotOptimize(out.data());
    if (comm.rank() == 0) {
      root.recv_bytes = comm.stats().coll_bytes_received;
      root.sent_bytes = comm.stats().coll_bytes_sent;
    }
  });
  return root;
}

RootStats run_allgather(CollectiveAlgo algo) {
  RootStats root;
  pc::run(kRanks, [&root, algo](pc::Communicator& comm) {
    std::vector<double> mine(kElems, static_cast<double>(comm.rank()));
    comm.stats().reset();
    auto all = comm.allgather(std::span<const double>(mine), algo);
    benchmark::DoNotOptimize(all.data());
    if (comm.rank() == 0) {
      root.recv_bytes = comm.stats().coll_bytes_received;
      root.sent_bytes = comm.stats().coll_bytes_sent;
    }
  });
  return root;
}

RootStats run_alltoallv(CollectiveAlgo algo) {
  RootStats root;
  pc::run(kRanks, [&root, algo](pc::Communicator& comm) {
    std::vector<std::vector<double>> parts(kRanks);
    for (int dst = 0; dst < kRanks; ++dst) {
      parts[static_cast<std::size_t>(dst)].assign(
          kElems / kRanks, static_cast<double>(comm.rank() * kRanks + dst));
    }
    comm.stats().reset();
    auto got = comm.alltoallv(parts, algo);
    benchmark::DoNotOptimize(got.data());
    if (comm.rank() == 0) {
      root.recv_bytes = comm.stats().coll_bytes_received;
      root.sent_bytes = comm.stats().coll_bytes_sent;
    }
  });
  return root;
}

void BM_AllreduceLinearBaseline(benchmark::State& state) {
  RootStats root;
  for (auto _ : state) root = run_allreduce(CollectiveAlgo::kLinear);
  report(state, root);
}
BENCHMARK(BM_AllreduceLinearBaseline)->UseRealTime()->MinTime(0.5);

void BM_AllreduceAutoRabenseifner(benchmark::State& state) {
  RootStats root;
  for (auto _ : state) root = run_allreduce(CollectiveAlgo::kAuto);
  report(state, root);
}
BENCHMARK(BM_AllreduceAutoRabenseifner)->UseRealTime()->MinTime(0.5);

void BM_AllgatherLinearBaseline(benchmark::State& state) {
  RootStats root;
  for (auto _ : state) root = run_allgather(CollectiveAlgo::kLinear);
  report(state, root);
}
BENCHMARK(BM_AllgatherLinearBaseline)->UseRealTime()->MinTime(0.5);

void BM_AllgatherAutoRing(benchmark::State& state) {
  RootStats root;
  for (auto _ : state) root = run_allgather(CollectiveAlgo::kAuto);
  report(state, root);
}
BENCHMARK(BM_AllgatherAutoRing)->UseRealTime()->MinTime(0.5);

void BM_AlltoallvLinearBaseline(benchmark::State& state) {
  RootStats root;
  for (auto _ : state) root = run_alltoallv(CollectiveAlgo::kLinear);
  report(state, root);
}
BENCHMARK(BM_AlltoallvLinearBaseline)->UseRealTime()->MinTime(0.5);

void BM_AlltoallvPairwise(benchmark::State& state) {
  RootStats root;
  for (auto _ : state) root = run_alltoallv(CollectiveAlgo::kPairwise);
  report(state, root);
}
BENCHMARK(BM_AlltoallvPairwise)->UseRealTime()->MinTime(0.5);

}  // namespace

BENCHMARK_MAIN();
