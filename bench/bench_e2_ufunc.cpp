// E2 — §III.D ufunc auto-parallelization and conformance analysis.
//
// "Binary ufuncs are trivially parallelizable for the case when the
// argument arrays are conformable ... For the case when array arguments do
// not share the same distribution, the ufunc requires node-level
// communication ... ODIN will choose a strategy that will minimize
// communication."
//
// Shape to reproduce: conformable -> zero element bytes moved;
// non-conformable -> ~N elements moved (minus the fraction already in
// place), identical numbers whichever explicit strategy is forced when the
// layouts are symmetric.
#include <benchmark/benchmark.h>

#include "comm/runner.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

namespace {

void BM_UnaryUfunc(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      comm.stats().reset();
      auto y = od::sin(x);
      benchmark::DoNotOptimize(y.local_view().data());
    });
    bytes = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["element_bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_UnaryUfunc)->Args({1 << 18, 1})->Args({1 << 18, 4});

void BM_BinaryConformable(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      comm.stats().reset();
      auto z = x + y;
      benchmark::DoNotOptimize(z.local_view().data());
    });
    bytes = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["element_bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BinaryConformable)->Args({1 << 18, 4});

// Non-conformable: block + cyclic operands. kAuto must match the cheaper
// explicit direction; the counter shows ~8 bytes * N(1 - 1/P) of payload
// plus plan overhead.
void BM_BinaryNonConformable(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  const auto strategy = static_cast<od::ConformStrategy>(state.range(2));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats =
        pc::run_with_stats(ranks, [n, strategy](pc::Communicator& comm) {
          auto bdist = od::Distribution::block(comm, od::Shape({n}), 0);
          auto cdist = od::Distribution::cyclic(comm, od::Shape({n}), 0);
          auto x = Arr::random(bdist, 1);
          auto y = Arr::random(cdist, 2);
          comm.stats().reset();
          auto z = x.zip(y, std::plus<double>{}, strategy);
          benchmark::DoNotOptimize(z.local_view().data());
        });
    bytes = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["element_bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BinaryNonConformable)
    ->Args({1 << 16, 4, static_cast<int>(od::ConformStrategy::kAuto)})
    ->Args({1 << 16, 4, static_cast<int>(od::ConformStrategy::kLeft)})
    ->Args({1 << 16, 4, static_cast<int>(od::ConformStrategy::kRight)});

// Replicated vs distributed operand: the auto strategy must redistribute
// the *distributed* side only if that is cheaper; moving toward the
// replicated layout costs (P-1)/P of N per rank, so auto picks the other
// direction. Here right operand is replicated on 1-rank-equivalent... we
// emulate asymmetry with explicit skewed blocks instead.
void BM_BinarySkewedVsUniform(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      // Skewed: rank 0 holds 70%, rest share the remainder.
      std::vector<od::index_t> sizes(static_cast<std::size_t>(comm.size()));
      od::index_t big = (7 * n) / 10;
      sizes[0] = big;
      od::index_t rest = n - big;
      for (int r = 1; r < comm.size(); ++r) {
        sizes[static_cast<std::size_t>(r)] = rest / (comm.size() - 1);
      }
      sizes.back() += n - big - (rest / (comm.size() - 1)) * (comm.size() - 1);
      auto skew = od::Distribution::explicit_block(comm, od::Shape({n}), 0,
                                                   sizes);
      auto uni = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(skew, 1);
      auto y = Arr::random(uni, 2);
      comm.stats().reset();
      auto z = x + y;  // kAuto chooses the direction moving fewer elements
      benchmark::DoNotOptimize(z.local_view().data());
    });
    bytes = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.counters["element_bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_BinarySkewedVsUniform)->Args({1 << 16, 4});

}  // namespace

BENCHMARK_MAIN();
