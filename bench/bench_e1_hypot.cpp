// E1 — §III.C hypot example:
//   @odin.local
//   def hypot(x, y): return odin.sqrt(x**2 + y**2)
//   x = odin.random((n,)); y = odin.random((n,)); h = hypot(x, y)
//
// Global-mode ufunc vs the odin.local registered function vs serial NumPy-
// style loop, over sizes and rank counts. Expected shape: conformable
// arrays -> zero element traffic in every distributed variant; per-element
// cost flat in rank count (ranks are threads on one core, so wall time
// does not drop — DESIGN.md §2 explains why the byte counters are the
// portable signal).
#include <benchmark/benchmark.h>

#include <cmath>

#include "comm/runner.hpp"
#include "odin/local.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

namespace {

void BM_HypotSerialLoop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n), y(n), h(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = 0.1 * static_cast<double>(i % 100);
    y[i] = 0.2 * static_cast<double>(i % 50);
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) h[i] = std::hypot(x[i], y[i]);
    benchmark::DoNotOptimize(h.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HypotSerialLoop)->Arg(1 << 14)->Arg(1 << 20);

void BM_HypotGlobalUfunc(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t bytes_moved = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      comm.stats().reset();
      auto h = od::hypot(x, y);
      benchmark::DoNotOptimize(h.local_view().data());
    });
    bytes_moved = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["element_bytes_moved"] =
      static_cast<double>(bytes_moved);
}
BENCHMARK(BM_HypotGlobalUfunc)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 4})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8});

void BM_HypotLocalFunction(benchmark::State& state) {
  // The @odin.local path: the function is registered once (broadcast to
  // workers) and invoked from the global level by name.
  od::LocalRegistry::instance().register_function(
      "hypot",
      [](const od::LocalContext&,
         const std::vector<std::span<const double>>& in,
         std::span<double> out) {
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = std::sqrt(in[0][i] * in[0][i] + in[1][i] * in[1][i]);
        }
      });
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      auto h = od::call_local("hypot", x, y);
      benchmark::DoNotOptimize(h.local_view().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HypotLocalFunction)
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 4})
    ->Args({1 << 20, 4});

// The expression form sqrt(x**2 + y**2) with eager temporaries, as a user
// would write it globally.
void BM_HypotGlobalExpression(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      auto h = od::sqrt(od::square(x) + od::square(y));
      benchmark::DoNotOptimize(h.local_view().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HypotGlobalExpression)->Args({1 << 14, 4})->Args({1 << 20, 4});

}  // namespace

BENCHMARK_MAIN();
