// E6 — §IV.D "Python as an algorithm specification language": the paper's
// exact listing —
//   int arr[100];              seamless::numpy::sum(arr);
//   std::vector<double> darr;  seamless::numpy::sum(darr);
// — plus a size sweep of the compiled-from-MiniPy sum against
// std::accumulate. Expected shape: near-native for double inputs (zero-copy
// view), a conversion cost for int inputs.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "seamless/seamless.hpp"

namespace np = pyhpc::seamless::numpy;

namespace {

void BM_PaperIntArray100(benchmark::State& state) {
  int arr[100];
  for (int i = 0; i < 100; ++i) arr[i] = i;
  double result = 0.0;
  for (auto _ : state) {
    result = np::sum(arr);
    benchmark::DoNotOptimize(result);
  }
  state.counters["result"] = result;
}
BENCHMARK(BM_PaperIntArray100);

void BM_PaperDoubleVector100(benchmark::State& state) {
  std::vector<double> darr(100);
  for (int i = 0; i < 100; ++i) darr[static_cast<std::size_t>(i)] = 0.5 * i;
  double result = 0.0;
  for (auto _ : state) {
    result = np::sum(darr);
    benchmark::DoNotOptimize(result);
  }
  state.counters["result"] = result;
}
BENCHMARK(BM_PaperDoubleVector100);

void BM_EmbeddedSumVsSize(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i % 11);
  }
  double result = 0.0;
  for (auto _ : state) {
    result = np::sum(v);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EmbeddedSumVsSize)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_StdAccumulateVsSize(benchmark::State& state) {
  std::vector<double> v(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<double>(i % 11);
  }
  double result = 0.0;
  for (auto _ : state) {
    result = std::accumulate(v.begin(), v.end(), 0.0);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdAccumulateVsSize)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_EmbeddedDot(benchmark::State& state) {
  std::vector<double> a(static_cast<std::size_t>(state.range(0)), 1.5);
  std::vector<double> b(static_cast<std::size_t>(state.range(0)), 2.0);
  double result = 0.0;
  for (auto _ : state) {
    result = np::dot(a, b);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EmbeddedDot)->Arg(10000);

void BM_NativeDot(benchmark::State& state) {
  std::vector<double> a(static_cast<std::size_t>(state.range(0)), 1.5);
  std::vector<double> b(static_cast<std::size_t>(state.range(0)), 2.0);
  double result = 0.0;
  for (auto _ : state) {
    result = std::inner_product(a.begin(), a.end(), b.begin(), 0.0);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NativeDot)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
