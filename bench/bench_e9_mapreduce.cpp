// E9 — §III.I distributed tabular data + map-reduce: "distributed
// structured arrays provide the fundamental components for parallel
// Map-Reduce style computations".
//
// Workload: group-by-sum over structured sales records, swept over row
// counts, rank counts, and key skew. Shape: shuffle bytes scale with the
// number of distinct (rank, key) combiner outputs — not with row count —
// because of the local combine; skewed keys concentrate reducer load.
#include <benchmark/benchmark.h>

#include "comm/runner.hpp"
#include "odin/tabular.hpp"
#include "util/random.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;

namespace {

struct Sale {
  std::int64_t store;
  std::int64_t item;
  double amount;
};

od::DistTable<Sale> make_table(pc::Communicator& comm, std::int64_t rows,
                               std::int64_t num_keys, bool skewed) {
  const std::int64_t per_rank = rows / comm.size();
  pyhpc::util::Xoshiro256 rng(42, static_cast<std::uint64_t>(comm.rank()));
  std::vector<Sale> local;
  local.reserve(static_cast<std::size_t>(per_rank));
  for (std::int64_t i = 0; i < per_rank; ++i) {
    std::int64_t key = rng.next_int(0, num_keys - 1);
    if (skewed && rng.next_double() < 0.8) key = 0;  // hot key
    local.push_back(Sale{key, i % 13, rng.next_double() * 100.0});
  }
  return od::DistTable<Sale>(comm, std::move(local));
}

void BM_GroupBySum(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  const std::int64_t keys = state.range(2);
  std::uint64_t shuffle_bytes = 0;
  for (auto _ : state) {
    auto stats =
        pc::run_with_stats(ranks, [rows, keys](pc::Communicator& comm) {
          auto table = make_table(comm, rows, keys, false);
          comm.stats().reset();
          auto grouped = od::map_reduce<std::int64_t, double>(
              table,
              [](const Sale& s) {
                return std::pair<std::int64_t, double>(s.store, s.amount);
              },
              [](double acc, double v) { return acc + v; });
          benchmark::DoNotOptimize(grouped.data());
        });
    shuffle_bytes = stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["shuffle_bytes"] = static_cast<double>(shuffle_bytes);
}
BENCHMARK(BM_GroupBySum)
    ->Args({1 << 14, 4, 16})
    ->Args({1 << 17, 4, 16})     // 8x rows, same keys -> same shuffle bytes
    ->Args({1 << 17, 4, 4096})   // more keys -> more shuffle bytes
    ->Args({1 << 17, 8, 16});

void BM_GroupBySumSkewed(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [rows](pc::Communicator& comm) {
      auto table = make_table(comm, rows, 64, true);
      auto grouped = od::map_reduce<std::int64_t, double>(
          table,
          [](const Sale& s) {
            return std::pair<std::int64_t, double>(s.store, s.amount);
          },
          [](double acc, double v) { return acc + v; });
      benchmark::DoNotOptimize(grouped.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_GroupBySumSkewed)->Args({1 << 17, 4});

void BM_FilterMapPipeline(benchmark::State& state) {
  // Local-only pipeline stages (filter + map) never touch the wire.
  const std::int64_t rows = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t p2p = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [rows](pc::Communicator& comm) {
      auto table = make_table(comm, rows, 64, false);
      comm.stats().reset();
      auto big = table.filter([](const Sale& s) { return s.amount > 50.0; });
      auto amounts = big.map<double>([](const Sale& s) { return s.amount; });
      benchmark::DoNotOptimize(amounts.local_rows().data());
    });
    p2p = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["bytes_moved"] = static_cast<double>(p2p);
}
BENCHMARK(BM_FilterMapPipeline)->Args({1 << 17, 4});

void BM_Rebalance(benchmark::State& state) {
  // All rows on rank 0 -> even redistribution.
  const std::int64_t rows = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [rows](pc::Communicator& comm) {
      std::vector<Sale> local;
      if (comm.rank() == 0) {
        local.resize(static_cast<std::size_t>(rows), Sale{1, 2, 3.0});
      }
      od::DistTable<Sale> table(comm, std::move(local));
      auto balanced = table.rebalance();
      benchmark::DoNotOptimize(balanced.local_rows().data());
    });
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Rebalance)->Args({1 << 16, 4});

}  // namespace

BENCHMARK_MAIN();
