// E8 — §III.A distribution control: creation cost per scheme,
// global-to-local mapping throughput, and redistribution cost between
// schemes. "Some aspects of the distribution that can be controlled are:
// which nodes ..., which dimension ..., non-uniform sections ..., and
// either block, cyclic, block-cyclic, or another arbitrary global-to-local
// index mapping."
#include <benchmark/benchmark.h>

#include "comm/runner.hpp"
#include "odin/dist_array.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

namespace {

od::Distribution make_scheme(int scheme, pc::Communicator& comm,
                             od::index_t n) {
  switch (scheme) {
    case 0: return od::Distribution::block(comm, od::Shape({n}), 0);
    case 1: return od::Distribution::cyclic(comm, od::Shape({n}), 0);
    case 2:
      return od::Distribution::block_cyclic(comm, od::Shape({n}), 0, 16);
    default: {
      std::vector<od::index_t> sizes(static_cast<std::size_t>(comm.size()),
                                     n / comm.size());
      sizes[0] += n % comm.size();
      return od::Distribution::explicit_block(comm, od::Shape({n}), 0, sizes);
    }
  }
}

const char* scheme_name(int scheme) {
  switch (scheme) {
    case 0: return "block";
    case 1: return "cyclic";
    case 2: return "block_cyclic16";
    default: return "explicit";
  }
}

void BM_CreateArray(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  const int scheme = static_cast<int>(state.range(2));
  for (auto _ : state) {
    pc::run(ranks, [n, scheme](pc::Communicator& comm) {
      auto dist = make_scheme(scheme, comm, n);
      auto a = Arr::random(dist, 7);
      benchmark::DoNotOptimize(a.local_view().data());
    });
  }
  state.SetLabel(scheme_name(scheme));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CreateArray)
    ->Args({1 << 18, 4, 0})
    ->Args({1 << 18, 4, 1})
    ->Args({1 << 18, 4, 2})
    ->Args({1 << 18, 4, 3});

// Pure index arithmetic: global_of_local + owner_of round trips per second.
void BM_GlobalLocalMapping(benchmark::State& state) {
  const int scheme = static_cast<int>(state.range(0));
  pc::run(1, [&state, scheme](pc::Communicator& comm) {
    const od::index_t n = 1 << 16;
    auto dist = make_scheme(scheme, comm, n);
    od::index_t checksum = 0;
    for (auto _ : state) {
      for (od::index_t l = 0; l < dist.local_count(); l += 7) {
        const auto g = dist.global_of_local(l);
        checksum += dist.owner_of(g).second;
      }
      benchmark::DoNotOptimize(checksum);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(dist.local_count() / 7));
  });
  state.SetLabel(scheme_name(scheme));
}
BENCHMARK(BM_GlobalLocalMapping)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Redistribute(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  const int from = static_cast<int>(state.range(2));
  const int to = static_cast<int>(state.range(3));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats =
        pc::run_with_stats(ranks, [n, from, to](pc::Communicator& comm) {
          auto a = Arr::random(make_scheme(from, comm, n), 3);
          comm.stats().reset();
          auto b = od::redistribute(a, make_scheme(to, comm, n));
          benchmark::DoNotOptimize(b.local_view().data());
        });
    bytes = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetLabel(std::string(scheme_name(from)) + "->" + scheme_name(to));
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Redistribute)
    ->Args({1 << 16, 4, 0, 1})
    ->Args({1 << 16, 4, 1, 0})
    ->Args({1 << 16, 4, 0, 2})
    ->Args({1 << 16, 4, 0, 3})
    ->Args({1 << 16, 4, 0, 0});  // identity: plan cost only

}  // namespace

BENCHMARK_MAIN();
