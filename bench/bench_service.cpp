// F8 — driver-as-a-service (DESIGN.md §10). Measures the service layer's
// three claims on a 4-rank world (1 driver + 3 workers):
//
//  1. Session multiplexing scales: N = {1, 4, 8} concurrent client threads
//     run a mixed create/axpy/block-solve/reduce workload against one
//     hardened control plane; the bench reports per-operation p50/p99
//     latency and aggregate throughput (also exported as obs gauges,
//     `service.mixed.c<N>.*`, so the metrics snapshot carries them).
//
//  2. The setup cache amortizes repeated structure: every client solves
//     the same-sized tridiagonal block, so after each worker's first
//     factorization everything hits. The bench reports the hit rate read
//     back from the `service.cache.*` obs counters (acceptance: > 0).
//
//  3. Coalescing cuts wire payloads: the same message stream shipped with
//     a 1-message window vs a 64-message window, payloads counted.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "odin/service.hpp"
#include "util/string_util.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace obs = pyhpc::obs;

namespace {

constexpr int kRanks = 4;          // 1 driver + 3 workers
constexpr std::int64_t kN = 60;    // global array length (20 per worker)
constexpr int kRoundsPerClient = 12;

od::ServiceOptions bench_options() {
  od::ServiceOptions o;
  o.driver.ack_timeout = std::chrono::milliseconds(60);
  o.driver.max_retries = 12;
  o.driver.reply_timeout = std::chrono::milliseconds(2000);
  o.overload = od::OverloadPolicy::kPark;  // benches must not shed
  return o;
}

double metric(const std::string& name) {
  auto& reg = obs::MetricsRegistry::global();
  return reg.has(name) ? reg.value(name) : 0.0;
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

// One client's mixed workload: allocate, combine, solve the repeated
// tridiagonal structure, then synchronize with a reduce. Returns the
// per-round reduce (sync-point) latencies in microseconds.
std::vector<double> run_client(od::Session& s) {
  std::vector<double> lat_us;
  lat_us.reserve(kRoundsPerClient);
  for (int round = 0; round < kRoundsPerClient; ++round) {
    const auto t0 = std::chrono::steady_clock::now();
    const int ones = s.create_full(kN, 1.0);
    const int twos = s.create_full(kN, 2.0);
    const int mix = s.axpy(0.5, ones, twos);     // 2.5 everywhere
    const int solved = s.block_solve(mix);       // same structure each round
    (void)s.reduce_sum(solved);
    s.free_array(ones);
    s.free_array(twos);
    s.free_array(mix);
    s.free_array(solved);
    const auto dt = std::chrono::steady_clock::now() - t0;
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(dt).count());
  }
  return lat_us;
}

// Claim 1 + 2: N concurrent sessions, mixed workload, latency percentiles
// and cache hit rate.
void BM_ServiceMixed(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double p50 = 0.0, p99 = 0.0, ops_per_s = 0.0, hit_rate = 0.0;
  for (auto _ : state) {
    const double hits0 = metric("service.cache.hits");
    const double miss0 = metric("service.cache.misses");
    pc::run(kRanks, [clients, &p50, &p99, &ops_per_s](pc::Communicator& comm) {
      od::ServiceContext svc(comm, bench_options());
      if (!svc.is_driver()) {
        svc.worker_loop();
        return;
      }
      std::vector<std::vector<double>> lat(
          static_cast<std::size_t>(clients));
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(clients));
      const auto t0 = std::chrono::steady_clock::now();
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&svc, &lat, c] {
          od::Session s = svc.open_session();
          lat[static_cast<std::size_t>(c)] = run_client(s);
          s.close();
        });
      }
      for (auto& t : threads) t.join();
      const auto wall = std::chrono::steady_clock::now() - t0;
      svc.shutdown();

      std::vector<double> all;
      for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      p50 = percentile(all, 0.50);
      p99 = percentile(all, 0.99);
      const double ops =
          static_cast<double>(clients) * kRoundsPerClient * 9.0;
      ops_per_s = ops / std::chrono::duration<double>(wall).count();
    });
    const double hits = metric("service.cache.hits") - hits0;
    const double misses = metric("service.cache.misses") - miss0;
    hit_rate = (hits + misses) > 0.0 ? hits / (hits + misses) : 0.0;
  }
  state.SetLabel(pyhpc::util::cat("clients=", clients));
  state.counters["p50_us"] = p50;
  state.counters["p99_us"] = p99;
  state.counters["ops_per_s"] = ops_per_s;
  state.counters["cache_hit_rate"] = hit_rate;
  // Also export through the obs layer so the metrics snapshot in the
  // bench report carries the service numbers (EXPERIMENTS.md §F8).
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = pyhpc::util::cat("service.mixed.c", clients);
  reg.set(prefix + ".p50_us", p50);
  reg.set(prefix + ".p99_us", p99);
  reg.set(prefix + ".ops_per_s", ops_per_s);
  reg.set(prefix + ".cache_hit_rate", hit_rate);
}
BENCHMARK(BM_ServiceMixed)->Arg(1)->Arg(4)->Arg(8)->Iterations(3);

// Claim 3: the coalescing window. The identical 4-session stream shipped
// with batching effectively off (1-message window) vs a 64-message window.
void BM_ServiceCoalescing(benchmark::State& state) {
  const bool coalesced = state.range(0) == 1;
  double payloads = 0.0, messages = 0.0;
  for (auto _ : state) {
    pc::run(kRanks, [coalesced, &payloads, &messages](pc::Communicator& comm) {
      od::ServiceOptions opts = bench_options();
      opts.batch_messages = coalesced ? 64 : 1;
      opts.batch_window = std::chrono::microseconds(coalesced ? 500 : 0);
      od::ServiceContext svc(comm, opts);
      if (!svc.is_driver()) {
        svc.worker_loop();
        return;
      }
      std::vector<od::Session> sessions;
      for (int c = 0; c < 4; ++c) sessions.push_back(svc.open_session());
      const auto before = svc.driver().payloads_sent();
      for (int round = 0; round < 8; ++round) {
        for (auto& s : sessions) {
          const int x = s.create_full(kN, 1.0);
          s.free_array(x);
        }
      }
      for (auto& s : sessions) s.flush();
      payloads = static_cast<double>(svc.driver().payloads_sent() - before);
      messages = static_cast<double>(svc.messages_submitted());
      for (auto& s : sessions) s.close();
      svc.shutdown();
    });
  }
  state.SetLabel(coalesced ? "window=64" : "window=1");
  state.counters["payloads"] = payloads;
  state.counters["messages"] = messages;
}
BENCHMARK(BM_ServiceCoalescing)->Arg(0)->Arg(1)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
