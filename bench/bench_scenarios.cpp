// F9 — the end-to-end scenario suite as a tracked bench (ROADMAP item 4).
// Each benchmark drives the SAME library function the `scenario` tests
// gate on, at p = 4 and p = 8, and re-exports the scenario's folded
// `scenario.<name>.*` obs gauges as benchmark counters so the BENCH_PR9
// pipeline records per-scenario wall time next to per-layer numbers. A
// perf regression in any layer the composition crosses (transport,
// collectives, SpMV overlap, solver, shuffle, redistribution plan) moves
// these before it moves a microbench.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "comm/runner.hpp"
#include "obs/metrics.hpp"
#include "scenarios/scenarios.hpp"
#include "util/checkpoint.hpp"
#include "util/string_util.hpp"

namespace pc = pyhpc::comm;
namespace sc = pyhpc::scenarios;
namespace obs = pyhpc::obs;

namespace {

double metric(const std::string& name) {
  auto& reg = obs::MetricsRegistry::global();
  return reg.has(name) ? reg.value(name) : 0.0;
}

/// Copies the scenario's folded gauges onto the benchmark counters and
/// re-publishes them under a per-rank-count name so one metrics snapshot
/// can hold the p=4 and p=8 numbers side by side.
void export_scenario_counters(benchmark::State& state,
                              const std::string& scenario, int ranks,
                              std::initializer_list<const char*> extras) {
  auto& reg = obs::MetricsRegistry::global();
  const std::string prefix = "scenario." + scenario + ".";
  state.counters["wall_ms"] = metric(prefix + "wall_ms");
  reg.set(pyhpc::util::cat(prefix, "p", ranks, ".wall_ms"),
          metric(prefix + "wall_ms"));
  for (const char* extra : extras) {
    state.counters[extra] = metric(prefix + extra);
  }
}

void BM_HeatEquation(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  sc::HeatOptions o;
  o.n = 192;
  o.steps = 8;
  for (auto _ : state) {
    pc::run(ranks, [&](pc::Communicator& comm) { sc::run_heat(comm, o); });
  }
  export_scenario_counters(state, "heat_equation", ranks,
                           {"solver_iterations", "steps"});
}
BENCHMARK(BM_HeatEquation)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_HeatEquationResilient(benchmark::State& state) {
  // The recovery machinery (checkpoint writes each interval) priced in,
  // without a fault: the overhead headline for the resilient path.
  const int ranks = static_cast<int>(state.range(0));
  sc::HeatOptions o;
  o.n = 192;
  o.steps = 8;
  o.scheme = sc::HeatScheme::kBackwardEuler;
  o.resilient = true;
  for (auto _ : state) {
    o.store = std::make_shared<pyhpc::util::CheckpointStore>();
    pc::run(ranks, [&](pc::Communicator& comm) { sc::run_heat(comm, o); });
  }
  export_scenario_counters(state, "heat_equation", ranks,
                           {"solver_iterations", "recoveries"});
}
BENCHMARK(BM_HeatEquationResilient)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_PageRank(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const bool rebalance = state.range(1) != 0;
  sc::PageRankOptions o;
  o.nodes = 400;
  o.rebalance = rebalance;
  for (auto _ : state) {
    pc::run(ranks, [&](pc::Communicator& comm) { sc::run_pagerank(comm, o); });
  }
  export_scenario_counters(state, "pagerank", ranks,
                           {"iterations", "imbalance_before",
                            "imbalance_after"});
}
BENCHMARK(BM_PageRank)
    ->Args({4, 0})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Unit(benchmark::kMillisecond);

void BM_TabularAnalytics(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  sc::AnalyticsOptions o;
  o.events = 2000;
  for (auto _ : state) {
    pc::run(ranks,
            [&](pc::Communicator& comm) { sc::run_analytics(comm, o); });
  }
  export_scenario_counters(state, "tabular_analytics", ranks,
                           {"rows_kept", "groups"});
}
BENCHMARK(BM_TabularAnalytics)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Redistribution(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  sc::RedistOptions o;
  o.n = 1024;
  o.rows = 48;
  o.cols = 32;
  for (auto _ : state) {
    pc::run(ranks, [&](pc::Communicator& comm) {
      sc::run_redistribution(comm, o);
    });
  }
  export_scenario_counters(state, "redistribution", ranks,
                           {"hops", "elements_moved"});
}
BENCHMARK(BM_Redistribution)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
