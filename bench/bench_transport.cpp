// Transport-tier benchmarks (PR 7): what the zero-copy envelopes and the
// split-phase overlap paths buy.
//
//  - BM_TransportCopyVsMove: the same 8 MiB p2p volume sent as eager
//    copies vs moved vectors; the bytes_copied / zero_copy_bytes counters
//    carry the claim (copied path books every byte, moved path books
//    none), wall-clock carries the memcpy saved.
//  - BM_TransportRendezvous: large isend above the eager threshold — the
//    envelope aliases the caller's buffer and bytes_copied stays ~0.
//  - BM_SpmvOverlap: distributed 1D Laplacian SpMV at p = 2/4/8 through
//    the split-phase Import (halo receives posted first, interior rows on
//    the TaskPool while halos travel, boundary rows last). Compare
//    against BM_SpmvThreads (single-rank) and PR5 reports.
//  - BM_FindiffHaloOverlap: shifted_diff at p = 2/4/8 with the posted-
//    receive halo + parallel interior stencil. Compare against
//    BM_FindiffHaloExchange in bench_e3_findiff.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "comm/runner.hpp"
#include "odin/slicing.hpp"
#include "odin/ufunc.hpp"
#include "tpetra/crs_matrix.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace tp = pyhpc::tpetra;

using Arr = od::DistArray<double>;
using MapT = tp::Map<>;
using MatD = tp::CrsMatrix<double>;
using VecD = tp::Vector<double>;
using LO = std::int32_t;
using GO = std::int64_t;

namespace {

void BM_TransportCopyVsMove(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const bool zero_copy = state.range(1) != 0;
  std::uint64_t copied = 0, moved_bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(
        2, [n, zero_copy](pc::Communicator& comm) {
          if (comm.rank() == 0) {
            std::vector<double> payload(n, 1.5);
            if (zero_copy) {
              comm.send(std::move(payload), 1, 7);
            } else {
              comm.send(std::span<const double>(payload), 1, 7);
            }
          } else {
            auto got = comm.recv_vector<double>(0, 7);
            benchmark::DoNotOptimize(got.data());
          }
        });
    copied += stats.bytes_copied;
    moved_bytes += stats.zero_copy_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(double)));
  state.counters["bytes_copied"] =
      static_cast<double>(copied) / static_cast<double>(state.iterations());
  state.counters["zero_copy_bytes"] =
      static_cast<double>(moved_bytes) /
      static_cast<double>(state.iterations());
}

void BM_TransportRendezvous(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t copied = 0, rendezvous = 0;
  pc::CommConfig cfg;
  cfg.eager_threshold = 8192;  // default; n * 8 is far above it
  for (auto _ : state) {
    auto stats = pc::run_with_stats(2, cfg, [n](pc::Communicator& comm) {
      if (comm.rank() == 0) {
        std::vector<double> payload(n, 2.5);
        auto fut = comm.isend(std::span<const double>(payload), 1, 7);
        fut.wait();
      } else {
        auto got = comm.recv_vector<double>(0, 7);
        benchmark::DoNotOptimize(got.data());
      }
    });
    copied += stats.bytes_copied;
    rendezvous += stats.rendezvous;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(double)));
  state.counters["bytes_copied"] =
      static_cast<double>(copied) / static_cast<double>(state.iterations());
  state.counters["rendezvous"] =
      static_cast<double>(rendezvous) /
      static_cast<double>(state.iterations());
}

void BM_SpmvOverlap(benchmark::State& state) {
  const GO n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t copied = 0, zc = 0;
  std::uint64_t reps = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto map = MapT::uniform(comm, n);
      MatD a(map);
      for (LO i = 0; i < map.num_local(); ++i) {
        const GO g = map.local_to_global(i);
        std::vector<GO> cols;
        std::vector<double> vals;
        if (g > 0) {
          cols.push_back(g - 1);
          vals.push_back(-1.0);
        }
        cols.push_back(g);
        vals.push_back(2.0);
        if (g + 1 < n) {
          cols.push_back(g + 1);
          vals.push_back(-1.0);
        }
        a.insert_global_values(g, cols, vals);
      }
      a.fill_complete();
      VecD x(map, 1.0), y(map);
      comm.stats().reset();
      for (int rep = 0; rep < 10; ++rep) {
        a.apply(x, y);
        benchmark::DoNotOptimize(y.local_view().data());
      }
    });
    copied += stats.bytes_copied;
    zc += stats.zero_copy_bytes;
    reps += 10;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(reps) * n);
  state.counters["ranks"] = ranks;
  state.counters["bytes_copied"] =
      static_cast<double>(copied) / static_cast<double>(state.iterations());
  state.counters["zero_copy_bytes"] =
      static_cast<double>(zc) / static_cast<double>(state.iterations());
}

void BM_FindiffHaloOverlap(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t copied = 0, zc = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::linspace(dist, 1.0, 2.0 * M_PI);
      auto y = od::sin(x);
      const double dx = x.get_global({1}) - x.get_global({0});
      comm.stats().reset();
      auto dy = od::shifted_diff(y);
      auto dydx = dy / dx;
      benchmark::DoNotOptimize(dydx.local_view().data());
    });
    copied += stats.bytes_copied;
    zc += stats.zero_copy_bytes;
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["ranks"] = ranks;
  state.counters["bytes_copied"] =
      static_cast<double>(copied) / static_cast<double>(state.iterations());
  state.counters["zero_copy_bytes"] =
      static_cast<double>(zc) / static_cast<double>(state.iterations());
}

}  // namespace

BENCHMARK(BM_TransportCopyVsMove)
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});
BENCHMARK(BM_TransportRendezvous)->Arg(1 << 20);
BENCHMARK(BM_SpmvOverlap)
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4})
    ->Args({1 << 20, 8});
BENCHMARK(BM_FindiffHaloOverlap)
    ->Args({1 << 16, 2})
    ->Args({1 << 16, 4})
    ->Args({1 << 18, 8})
    ->Args({1 << 21, 4});

BENCHMARK_MAIN();
