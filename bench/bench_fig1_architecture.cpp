// F1 — Figure 1: the ODIN process architecture. Measures the three
// quantitative claims in the figure's caption and §III.B:
//
//  1. "the only communication from the top-level node is a short message,
//     at most tens of bytes" — control bytes per operation, independent of
//     array size;
//  2. "several messages can be buffered and sent at once" — batched vs
//     unbatched dispatch;
//  3. "so that the ODIN process does not become a performance bottleneck"
//     — driver-mediated dispatch vs SPMD global mode where every rank
//     derives the op descriptor locally.
#include <benchmark/benchmark.h>

#include "comm/runner.hpp"
#include "odin/driver.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

namespace {

// Claim 1: control bytes per op do not scale with n.
void BM_DriverControlBytes(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  double bytes_per_op = 0.0;
  for (auto _ : state) {
    pc::run(ranks, [n, &bytes_per_op](pc::Communicator& comm) {
      od::DriverContext ctx(comm);
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      const auto before = ctx.control_bytes_sent();
      const int x = ctx.create_random(n, 1);
      const int y = ctx.create_random(n, 2);
      const int h = ctx.binary("hypot", x, y);
      (void)ctx.reduce_sum(h);
      const auto ops = 4.0 * ctx.num_workers();
      bytes_per_op = static_cast<double>(ctx.control_bytes_sent() - before) / ops;
      ctx.shutdown();
    });
  }
  state.counters["control_bytes_per_op"] = bytes_per_op;
}
BENCHMARK(BM_DriverControlBytes)
    ->Args({1000, 4})
    ->Args({1000000, 4})  // 1000x data, same control bytes
    ->Iterations(3);

// Claim 2: batching N ops into one payload per worker.
void BM_DriverDispatch(benchmark::State& state) {
  const bool batched = state.range(0) == 1;
  const int ops = static_cast<int>(state.range(1));
  const int ranks = 4;
  double payloads = 0.0;
  for (auto _ : state) {
    pc::run(ranks, [batched, ops, &payloads](pc::Communicator& comm) {
      od::DriverContext ctx(comm);
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      int cur = ctx.create_full(4096, 1.0);
      const auto before = ctx.payloads_sent();
      if (batched) ctx.begin_batch();
      for (int i = 0; i < ops; ++i) cur = ctx.unary("sqrt", cur);
      if (batched) ctx.flush_batch();
      (void)ctx.reduce_sum(cur);
      payloads = static_cast<double>(ctx.payloads_sent() - before);
      ctx.shutdown();
    });
  }
  state.SetLabel(batched ? "batched" : "unbatched");
  state.counters["payloads"] = payloads;
}
BENCHMARK(BM_DriverDispatch)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Iterations(3);

// Claim 3: driver dispatch vs SPMD global mode. In SPMD mode, every rank
// derives the op locally: zero control messages, no central bottleneck.
void BM_SpmdGlobalMode(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t control_bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::random(dist, 1);
      auto y = Arr::random(dist, 2);
      comm.stats().reset();
      auto h = od::hypot(x, y);
      const double s = h.sum();  // one allreduce, like reduce_sum
      benchmark::DoNotOptimize(s);
    });
    control_bytes = stats.p2p_bytes_sent;  // zero: no driver traffic
  }
  state.counters["driver_bytes"] = static_cast<double>(control_bytes);
}
BENCHMARK(BM_SpmdGlobalMode)->Args({1000, 4})->Args({1000000, 4})->Iterations(3);

void BM_DriverMediated(benchmark::State& state) {
  // The same computation through the driver (rank 0 does no compute; one
  // worker fewer does the work + control round-trips).
  const std::int64_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  for (auto _ : state) {
    pc::run(ranks, [n](pc::Communicator& comm) {
      od::DriverContext ctx(comm);
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      const int x = ctx.create_random(n, 1);
      const int y = ctx.create_random(n, 2);
      const int h = ctx.binary("hypot", x, y);
      const double s = ctx.reduce_sum(h);
      benchmark::DoNotOptimize(s);
      ctx.shutdown();
    });
  }
}
BENCHMARK(BM_DriverMediated)->Args({1000, 4})->Args({1000000, 4})->Iterations(3);

// Driver bottleneck scaling: many tiny ops, increasing worker counts. The
// driver serializes dispatch, so op throughput saturates — the effect the
// paper tells users to avoid via direct worker-to-worker communication.
void BM_DriverBottleneck(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const int ops = 200;
  for (auto _ : state) {
    pc::run(ranks, [ops](pc::Communicator& comm) {
      od::DriverContext ctx(comm);
      if (!ctx.is_driver()) {
        ctx.worker_loop();
        return;
      }
      int cur = ctx.create_full(64, 2.0);
      for (int i = 0; i < ops; ++i) cur = ctx.unary("sqrt", cur);
      (void)ctx.reduce_sum(cur);
      ctx.shutdown();
    });
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_DriverBottleneck)->Arg(2)->Arg(4)->Arg(8)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
