// E4 — the paper's §IV.A @jit example and the "Python is too slow" claim.
//
//   @jit
//   def sum(it):
//       res = 0.0
//       for i in range(len(it)):
//           res += it[i]
//       return res
//
// Ladder: tree-walking interpreter (CPython stand-in) -> bytecode VM ->
// typed-register JIT -> handwritten native C++. The paper claims "Seamless
// allows compilation to fast machine code"; the expected shape is large
// interpreter/JIT gaps with the JIT approaching native.
#include <benchmark/benchmark.h>
#include <dlfcn.h>

#include <numeric>

#include "seamless/seamless.hpp"
#include "seamless/transpile.hpp"

namespace sm = pyhpc::seamless;
using sm::Value;

namespace {

const char* kSumSource =
    "def sum(it):\n"
    "    res = 0.0\n"
    "    for i in range(len(it)):\n"
    "        res += it[i]\n"
    "    return res\n";

std::shared_ptr<sm::ArrayValue> make_input(std::int64_t n) {
  std::vector<double> data(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    data[static_cast<std::size_t>(i)] = 0.5 + static_cast<double>(i % 7);
  }
  return sm::ArrayValue::owned(std::move(data));
}

void BM_SumInterpreter(benchmark::State& state) {
  sm::Engine engine(kSumSource);
  auto arr = make_input(state.range(0));
  double result = 0.0;
  for (auto _ : state) {
    result = engine.run_interpreted("sum", {Value::of(arr)}).as_float();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["result"] = result;
}
BENCHMARK(BM_SumInterpreter)->Arg(1000)->Arg(100000);

void BM_SumBytecodeVm(benchmark::State& state) {
  sm::Engine engine(kSumSource);
  auto arr = make_input(state.range(0));
  double result = 0.0;
  for (auto _ : state) {
    result = engine.run_vm("sum", {Value::of(arr)}).as_float();
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["result"] = result;
}
BENCHMARK(BM_SumBytecodeVm)->Arg(1000)->Arg(100000);

void BM_SumJit(benchmark::State& state) {
  sm::Engine engine(kSumSource);
  const auto& fn = engine.jit("sum", {sm::JitType::kArray});
  auto arr = make_input(state.range(0));
  double result = 0.0;
  for (auto _ : state) {
    result = fn.call_array_to_float(arr->span());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["result"] = result;
}
BENCHMARK(BM_SumJit)->Arg(1000)->Arg(100000)->Arg(10000000);

void BM_SumNativeCpp(benchmark::State& state) {
  auto arr = make_input(state.range(0));
  auto span = arr->span();
  double result = 0.0;
  for (auto _ : state) {
    result = std::accumulate(span.begin(), span.end(), 0.0);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["result"] = result;
}
BENCHMARK(BM_SumNativeCpp)->Arg(1000)->Arg(100000)->Arg(10000000);

// Static compilation (SIV.B): the same MiniPy sum lowered to C++, built
// into a shared library by the system compiler, and called through dlsym —
// the ahead-of-time end of the ladder.
void BM_SumStaticCompiled(benchmark::State& state) {
  static double (*fn)(double*, std::int64_t) = [] {
    auto mod = sm::parse(kSumSource);
    const std::string lib = "/tmp/pyhpc_bench_sum.so";
    sm::compile_to_library(
        sm::emit_cpp(mod, "sum", {sm::JitType::kArray}, "bench_sum"), lib);
    void* handle = ::dlopen(lib.c_str(), RTLD_NOW | RTLD_LOCAL);
    return reinterpret_cast<double (*)(double*, std::int64_t)>(
        ::dlsym(handle, "bench_sum"));
  }();
  auto arr = make_input(state.range(0));
  double result = 0.0;
  for (auto _ : state) {
    result = fn(arr->data, static_cast<std::int64_t>(arr->size));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["result"] = result;
}
BENCHMARK(BM_SumStaticCompiled)->Arg(1000)->Arg(100000)->Arg(10000000);

// One-time compilation overhead (what @jit pays at first call).
void BM_JitCompileCost(benchmark::State& state) {
  sm::Module mod = sm::parse(kSumSource);
  for (auto _ : state) {
    auto fn = sm::jit_compile(mod, "sum", {sm::JitType::kArray});
    benchmark::DoNotOptimize(fn);
  }
}
BENCHMARK(BM_JitCompileCost);

}  // namespace

BENCHMARK_MAIN();
