// E3 — §III.G finite differences via distributed slicing, verbatim:
//   x = odin.linspace(1, 2*pi, n); y = odin.sin(x)
//   dx = x[1] - x[0]; dy = y[1:] - y[:-1]; dydx = dy / dx
//
// Three implementations: general slice-based (what the NumPy syntax
// expresses), the hand-optimized halo exchange (what an MPI programmer
// writes, one 8-byte message per interior boundary), and a serial loop.
// Shape: halo traffic is O(P) bytes, independent of n — "its computation
// requires some small amount of inter-node communication".
#include <benchmark/benchmark.h>

#include <cmath>

#include "comm/runner.hpp"
#include "odin/slicing.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

namespace {

void BM_FindiffSerial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n), y(n), dydx(n - 1);
  const double lo = 1.0, hi = 2.0 * M_PI;
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    y[i] = std::sin(x[i]);
  }
  const double dx = x[1] - x[0];
  for (auto _ : state) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      dydx[i] = (y[i + 1] - y[i]) / dx;
    }
    benchmark::DoNotOptimize(dydx.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FindiffSerial)->Arg(1 << 16)->Arg(1 << 21);

void BM_FindiffOdinSlices(benchmark::State& state) {
  // The paper's one-liner dy = y[1:] - y[:-1] through the general slice
  // machinery (each slice rebalances onto a fresh block distribution).
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::linspace(dist, 1.0, 2.0 * M_PI);
      auto y = od::sin(x);
      const double dx = x.get_global({1}) - x.get_global({0});
      comm.stats().reset();
      auto dy = od::slice1d(y, od::Slice::from(1)) -
                od::slice1d(y, od::Slice::to(-1));
      auto dydx = dy / dx;
      benchmark::DoNotOptimize(dydx.local_view().data());
    });
    bytes = stats.p2p_bytes_sent + stats.coll_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FindiffOdinSlices)->Args({1 << 16, 4})->Args({1 << 18, 4});

void BM_FindiffHaloExchange(benchmark::State& state) {
  // Same result with the one-element halo path; the counter shows the
  // O(boundary) traffic: 8 bytes per interior rank boundary.
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t p2p_bytes = 0;
  std::uint64_t p2p_msgs = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::linspace(dist, 1.0, 2.0 * M_PI);
      auto y = od::sin(x);
      const double dx = x.get_global({1}) - x.get_global({0});
      comm.stats().reset();
      auto dy = od::shifted_diff(y);
      auto dydx = dy / dx;
      benchmark::DoNotOptimize(dydx.local_view().data());
    });
    p2p_bytes = stats.p2p_bytes_sent;
    p2p_msgs = stats.p2p_messages_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["halo_bytes"] = static_cast<double>(p2p_bytes);
  state.counters["halo_msgs"] = static_cast<double>(p2p_msgs);
}
BENCHMARK(BM_FindiffHaloExchange)
    ->Args({1 << 16, 2})
    ->Args({1 << 16, 4})
    ->Args({1 << 18, 4})
    ->Args({1 << 21, 4});

// Accuracy spot check folded into a bench so EXPERIMENTS.md can quote it:
// max |dydx - cos(mid)| at n = 2^16.
void BM_FindiffAccuracy(benchmark::State& state) {
  double max_err = 0.0;
  for (auto _ : state) {
    pc::run(4, [&max_err](pc::Communicator& comm) {
      const od::index_t n = 1 << 16;
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto x = Arr::linspace(dist, 1.0, 2.0 * M_PI);
      auto y = od::sin(x);
      const double dx = x.get_global({1}) - x.get_global({0});
      auto dydx = od::shifted_diff(y) / dx;
      auto xs = x.gather();
      auto ds = dydx.gather();
      double err = 0.0;
      for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
        const double mid = 0.5 * (xs[i] + xs[i + 1]);
        err = std::max(err, std::abs(ds[i] - std::cos(mid)));
      }
      if (comm.rank() == 0) max_err = err;
    });
  }
  state.counters["max_abs_error"] = max_err;
}
BENCHMARK(BM_FindiffAccuracy)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
