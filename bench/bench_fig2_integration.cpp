// F2 — Figure 2 and the §V use case: the three packages working together.
//
// "The user allocates, initializes and manipulates a large simulation data
// set using ODIN ... devises a solution approach using PyTrilinos solvers
// that accept ODIN arrays and chooses an approach where the solver calls
// back to Python to evaluate a model. This model is prototyped and
// debugged in pure Python, but ... Seamless is used [to] convert this
// callback into a highly efficient numerical kernel."
//
// Pipeline: ODIN array setup -> to_tpetra -> CG+AMG solve of a 1D
// reaction-diffusion system whose RHS model is evaluated by a MiniPy
// callback at each Newton step — with the callback running on the
// interpreter / VM / JIT tier. Shape: end-to-end time tracks the callback
// tier; the solve portion is identical.
#include <benchmark/benchmark.h>

#include <cmath>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "odin/interop.hpp"
#include "odin/ufunc.hpp"
#include "precond/amg.hpp"
#include "seamless/seamless.hpp"
#include "solvers/krylov.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace od = pyhpc::odin;
namespace pp = pyhpc::precond;
namespace sm = pyhpc::seamless;
namespace sv = pyhpc::solvers;
using Arr = od::DistArray<double>;

namespace {

// The "model" the solver calls back into: a nonlinear source term
// s(u) = u - 0.1 * u^3, written in MiniPy.
const char* kModelSource =
    "def model(u, out):\n"
    "    for i in range(len(u)):\n"
    "        out[i] = u[i] - 0.1 * u[i] * u[i] * u[i]\n"
    "    return 0\n";

enum Tier { kInterp = 0, kVm = 1, kJit = 2, kNative = 3 };

const char* tier_name(int tier) {
  switch (tier) {
    case kInterp: return "interpreted";
    case kVm: return "vm";
    case kJit: return "jit";
    default: return "native";
  }
}

// Evaluates the model on a local segment through the chosen tier.
void eval_model(sm::Engine& engine, int tier, std::span<double> u,
                std::span<double> out) {
  if (tier == kNative) {
    for (std::size_t i = 0; i < u.size(); ++i) {
      out[i] = u[i] - 0.1 * u[i] * u[i] * u[i];
    }
    return;
  }
  auto vu = sm::Value::of(sm::ArrayValue::view(u.data(), u.size()));
  auto vo = sm::Value::of(sm::ArrayValue::view(out.data(), out.size()));
  std::vector<sm::Value> args{vu, vo};
  switch (tier) {
    case kInterp: engine.run_interpreted("model", args); break;
    case kVm: engine.run_vm("model", args); break;
    default: engine.run_jit("model", args); break;
  }
}

void BM_FullPipeline(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const od::index_t n = state.range(1);
  const int ranks = static_cast<int>(state.range(2));
  double final_residual = 0.0;
  for (auto _ : state) {
    pc::run(ranks, [tier, n, &final_residual](pc::Communicator& comm) {
      sm::Engine engine(kModelSource);

      // 1) ODIN: allocate and initialize the simulation data set.
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto u0 = Arr::linspace(dist, 0.0, 1.0);

      // 2) Hand the ODIN array to the Trilinos-analogue stack.
      auto u = od::to_tpetra(u0);
      auto map = u.map();
      auto a = gl::laplace1d(map);
      a.scale(static_cast<double>(n));  // diffusion scaling
      pp::AmgPreconditioner amg(a);

      // 3) Picard iteration: A u_{k+1} = s(u_k), the model evaluated by
      //    the Seamless callback each step.
      gl::Vector rhs(map), unew(map, 0.0);
      for (int it = 0; it < 3; ++it) {
        eval_model(engine, tier, u.local_view(), rhs.local_view());
        sv::KrylovOptions opt;
        opt.tolerance = 1e-8;
        auto res = sv::cg_solve(a, rhs, unew, opt, &amg);
        u.update(1.0, unew, 0.0);
        if (comm.rank() == 0) final_residual = res.achieved_tolerance;
      }
      // 4) Back into ODIN land for post-processing.
      auto result = od::from_tpetra(u);
      benchmark::DoNotOptimize(result.local_view().data());
    });
  }
  state.SetLabel(tier_name(tier));
  state.counters["solve_rel_residual"] = final_residual;
}
BENCHMARK(BM_FullPipeline)
    ->Args({kInterp, 4096, 2})
    ->Args({kVm, 4096, 2})
    ->Args({kJit, 4096, 2})
    ->Args({kNative, 4096, 2})
    ->Iterations(1);

// The callback alone, per tier — isolates what Seamless contributes.
void BM_ModelCallbackOnly(benchmark::State& state) {
  const int tier = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  sm::Engine engine(kModelSource);
  std::vector<double> u(n, 0.5), out(n, 0.0);
  for (auto _ : state) {
    eval_model(engine, tier, u, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(tier_name(tier));
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_ModelCallbackOnly)
    ->Args({kInterp, 4096})
    ->Args({kVm, 4096})
    ->Args({kJit, 4096})
    ->Args({kNative, 4096});

// ODIN <-> Tpetra interop cost (the "ODIN arrays are optionally compatible
// with Trilinos distributed Vectors" hinge of Fig 2).
void BM_InteropRoundTrip(benchmark::State& state) {
  const od::index_t n = state.range(0);
  const int ranks = static_cast<int>(state.range(1));
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto stats = pc::run_with_stats(ranks, [n](pc::Communicator& comm) {
      auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
      auto a = Arr::random(dist, 5);
      comm.stats().reset();
      auto v = od::to_tpetra(a);
      auto back = od::from_tpetra(v);
      benchmark::DoNotOptimize(back.local_view().data());
    });
    bytes = stats.p2p_bytes_sent;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["element_bytes_moved"] = static_cast<double>(bytes);
}
BENCHMARK(BM_InteropRoundTrip)->Args({1 << 18, 4})->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
