// E5 — §IV.C FFI overhead: the cost ladder of calling libm's atan2
//   direct C call < Seamless CModule dynamic call < interpreted call.
// The claim being measured: Seamless FFI gives "effortless access to
// compiled libraries" at a small constant per-call overhead.
#include <benchmark/benchmark.h>

#include <cmath>

#include "seamless/seamless.hpp"

namespace sm = pyhpc::seamless;
using sm::Value;

namespace {

void BM_DirectAtan2(benchmark::State& state) {
  double x = 0.0;
  for (auto _ : state) {
    x += std::atan2(1.0, 2.0 + x * 1e-18);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DirectAtan2);

void BM_CModuleBoxedCall(benchmark::State& state) {
  // Dynamic lookup-by-name + boxed argument conversion per call.
  sm::CModule libm = sm::CModule::math();
  double x = 0.0;
  for (auto _ : state) {
    const Value args[] = {Value::of(1.0), Value::of(2.0 + x * 1e-18)};
    x += libm.call("atan2", args).as_float();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CModuleBoxedCall);

void BM_InterpretedCallThroughFfi(benchmark::State& state) {
  // MiniPy function that calls into libm through the injected namespace —
  // full interpreter dispatch plus FFI boxing.
  sm::Engine engine(
      "def angle(y, x):\n"
      "    return atan2(y, x)\n");
  engine.bind(sm::CModule::math());
  double x = 0.0;
  for (auto _ : state) {
    x += engine
             .run_interpreted("angle",
                              {Value::of(1.0), Value::of(2.0 + x * 1e-18)})
             .as_float();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_InterpretedCallThroughFfi);

void BM_VmCallThroughFfi(benchmark::State& state) {
  sm::Engine engine(
      "def angle(y, x):\n"
      "    return atan2(y, x)\n");
  engine.bind(sm::CModule::math());
  double x = 0.0;
  for (auto _ : state) {
    x += engine.run_vm("angle", {Value::of(1.0), Value::of(2.0 + x * 1e-18)})
             .as_float();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_VmCallThroughFfi);

// Binding cost: dlopen + 21 dlsym bindings (paid once per module).
void BM_CModuleMathConstruction(benchmark::State& state) {
  for (auto _ : state) {
    sm::CModule libm = sm::CModule::math();
    benchmark::DoNotOptimize(libm);
  }
}
BENCHMARK(BM_CModuleMathConstruction);

}  // namespace

BENCHMARK_MAIN();
