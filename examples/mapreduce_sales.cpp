// Distributed tabular analytics — the paper's §III.I claim that ODIN's
// structured arrays "provide the fundamental components for parallel
// Map-Reduce style computations".
//
// A synthetic retail dataset (structured records, dtype-style) is
// distributed over the ranks; the pipeline computes:
//   1. revenue per store            (map-reduce group-by-sum)
//   2. transactions per store       (map-reduce count)
//   3. revenue on large sales only  (filter -> map-reduce)
//   4. a rebalance after a skewed filter
//
// Run:  ./mapreduce_sales [rows] [nranks]
#include <cstdio>
#include <cstdlib>

#include "comm/runner.hpp"
#include "odin/tabular.hpp"
#include "util/random.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;

namespace {

struct Sale {
  std::int64_t store;
  std::int64_t item;
  double amount;
};

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t rows = argc > 1 ? std::atoll(argv[1]) : 200000;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t stores = 8;

  pc::run(nranks, [rows, stores](pc::Communicator& comm) {
    const bool root = comm.rank() == 0;

    // Each rank generates its slice of the dataset locally (no data ever
    // funnels through one node).
    const std::int64_t per_rank = rows / comm.size();
    pyhpc::util::Xoshiro256 rng(7, static_cast<std::uint64_t>(comm.rank()));
    std::vector<Sale> local;
    local.reserve(static_cast<std::size_t>(per_rank));
    for (std::int64_t i = 0; i < per_rank; ++i) {
      Sale s;
      s.store = rng.next_int(0, stores - 1);
      s.item = rng.next_int(0, 999);
      s.amount = 5.0 + 95.0 * rng.next_double();
      // Store 0 is a flagship with bigger tickets.
      if (s.store == 0) s.amount *= 3.0;
      local.push_back(s);
    }
    od::DistTable<Sale> sales(comm, std::move(local));

    const std::int64_t total_rows = sales.global_size();  // collective
    if (root) {
      std::printf("dataset: %lld rows over %d ranks\n",
                  static_cast<long long>(total_rows), comm.size());
    }

    // 1) Revenue per store.
    auto revenue = od::map_reduce<std::int64_t, double>(
        sales,
        [](const Sale& s) {
          return std::pair<std::int64_t, double>(s.store, s.amount);
        },
        [](double acc, double v) { return acc + v; });

    // 2) Transaction counts per store.
    auto counts = od::map_reduce<std::int64_t, std::int64_t>(
        sales,
        [](const Sale& s) {
          return std::pair<std::int64_t, std::int64_t>(s.store, 1);
        },
        [](std::int64_t acc, std::int64_t v) { return acc + v; });

    // Reducer outputs are distributed by key hash; gather for printing.
    struct KV {
      std::int64_t k;
      double v;
    };
    std::vector<KV> rev_local, cnt_local;
    for (const auto& [k, v] : revenue) rev_local.push_back(KV{k, v});
    for (const auto& [k, v] : counts) {
      cnt_local.push_back(KV{k, static_cast<double>(v)});
    }
    auto rev_all = comm.allgatherv(std::span<const KV>(rev_local));
    auto cnt_all = comm.allgatherv(std::span<const KV>(cnt_local));
    std::map<std::int64_t, double> rev, cnt;
    for (const auto& c : rev_all) {
      for (const auto& kv : c) rev[kv.k] = kv.v;
    }
    for (const auto& c : cnt_all) {
      for (const auto& kv : c) cnt[kv.k] = kv.v;
    }
    if (root) {
      std::printf("%-8s %14s %10s %12s\n", "store", "revenue", "txns",
                  "avg ticket");
      for (const auto& [store, total] : rev) {
        std::printf("%-8lld %14.2f %10.0f %12.2f\n",
                    static_cast<long long>(store), total, cnt[store],
                    total / cnt[store]);
      }
    }

    // 3) Large sales only (filter is rank-local, shuffle happens in the
    //    reduce).
    auto big = sales.filter([](const Sale& s) { return s.amount > 200.0; });
    auto big_rev = od::map_reduce<std::int64_t, double>(
        big,
        [](const Sale& s) {
          return std::pair<std::int64_t, double>(s.store, s.amount);
        },
        [](double acc, double v) { return acc + v; });
    double big_total = 0.0;
    for (const auto& [k, v] : big_rev) big_total += v;
    big_total = comm.allreduce_value(big_total, std::plus<double>{});
    const std::int64_t big_rows = big.global_size();  // collective
    if (root) {
      std::printf("large sales (>200): %lld rows, revenue %.2f\n",
                  static_cast<long long>(big_rows), big_total);
    }

    // 4) The filter left almost everything on the flagship store's rows;
    //    rebalance for downstream work.
    auto balanced = big.rebalance();
    const auto local_n = static_cast<std::int64_t>(balanced.local_rows().size());
    const auto mx = comm.allreduce_value(
        local_n, [](std::int64_t a, std::int64_t b) { return std::max(a, b); });
    const auto mn = comm.allreduce_value(
        local_n, [](std::int64_t a, std::int64_t b) { return std::min(a, b); });
    if (root) {
      std::printf("after rebalance: per-rank rows in [%lld, %lld]\n",
                  static_cast<long long>(mn), static_cast<long long>(mx));
    }
  });
  return 0;
}
