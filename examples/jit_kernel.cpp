// The paper's closing use case (§V): "A user can create a function designed
// to work on array data, compile it with Seamless' JIT compiler ..., and
// use that function as the node-level function for a distributed array
// computation with ODIN."
//
// A Gaussian-blur kernel is written in MiniPy, JIT-compiled, registered as
// an ODIN local function, and applied to a distributed array; the demo
// prints per-tier timings of the same kernel so the speedup from the JIT
// is visible in context.
//
// Run:  ./jit_kernel [n] [nranks]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "comm/runner.hpp"
#include "odin/local.hpp"
#include "odin/ufunc.hpp"
#include "seamless/seamless.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace sm = pyhpc::seamless;
using Arr = od::DistArray<double>;

namespace {

// The node-level kernel, in the Python subset: squared deviation from the
// segment mean (a per-node statistical transform).
const char* kKernelSource =
    "def zscore(u, out):\n"
    "    n = len(u)\n"
    "    mean = 0.0\n"
    "    for i in range(n):\n"
    "        mean += u[i]\n"
    "    mean = mean / n\n"
    "    var = 0.0\n"
    "    for i in range(n):\n"
    "        var += (u[i] - mean) * (u[i] - mean)\n"
    "    var = var / n\n"
    "    s = sqrt(var)\n"
    "    for i in range(n):\n"
    "        out[i] = (u[i] - mean) / s\n"
    "    return 0\n";

double time_tier(sm::Engine& engine, const char* tier, std::vector<double>& u,
                 std::vector<double>& out) {
  auto vu = sm::Value::of(sm::ArrayValue::view(u.data(), u.size()));
  auto vo = sm::Value::of(sm::ArrayValue::view(out.data(), out.size()));
  std::vector<sm::Value> args{vu, vo};
  const auto t0 = std::chrono::steady_clock::now();
  if (std::string(tier) == "interpreted") {
    engine.run_interpreted("zscore", args);
  } else if (std::string(tier) == "vm") {
    engine.run_vm("zscore", args);
  } else {
    engine.run_jit("zscore", args);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const od::index_t n = argc > 1 ? std::atoll(argv[1]) : 1 << 18;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 4;

  // Per-tier timing of the standalone kernel.
  {
    sm::Engine engine(kKernelSource);
    std::vector<double> u(1 << 16), out(u.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
      u[i] = static_cast<double>(i % 97);
    }
    std::printf("kernel on %zu elements:\n", u.size());
    for (const char* tier : {"interpreted", "vm", "jit", "jit"}) {
      std::printf("  %-12s %8.3f ms\n", tier,
                  1e3 * time_tier(engine, tier, u, out));
    }
    std::printf("  (second jit run shows the cached compiled code)\n");
  }

  // Register the JIT-compiled kernel as the ODIN local function and apply
  // it to a distributed array — the paper's "node-level function" step.
  // The engine is shared per process; each rank-thread guards its call.
  static sm::Engine shared_engine(kKernelSource);
  static std::mutex engine_mu;
  od::LocalRegistry::instance().register_function(
      "zscore",
      [](const od::LocalContext&,
         const std::vector<std::span<const double>>& in,
         std::span<double> out) {
        std::vector<double> copy(in[0].begin(), in[0].end());
        auto vu = sm::Value::of(sm::ArrayValue::view(copy.data(), copy.size()));
        auto vo = sm::Value::of(sm::ArrayValue::view(out.data(), out.size()));
        std::lock_guard<std::mutex> lock(engine_mu);
        shared_engine.run_jit("zscore", {vu, vo});
      });

  pc::run(nranks, [n](pc::Communicator& comm) {
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto u = Arr::random(dist, 99);
    auto z = od::call_local("zscore", u);
    // Each segment is now zero-mean, unit-variance; check globally per
    // rank and report from root.
    double local_mean = 0.0;
    auto zv = z.local_view();
    for (double v : zv) local_mean += v;
    local_mean /= static_cast<double>(zv.size());
    const double worst = comm.allreduce_value(
        std::abs(local_mean), [](double a, double b) { return std::max(a, b); });
    if (comm.rank() == 0) {
      std::printf("distributed zscore over %lld elements, %d ranks: "
                  "max per-segment |mean| = %.2e\n",
                  static_cast<long long>(n), comm.size(), worst);
    }
  });
  return 0;
}
