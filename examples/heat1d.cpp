// Explicit heat equation on a 1D rod — the paper's §III.G scenario
// ("finite difference calculations on structured grids ... with a single
// NumPy-like expression") as a time-stepping application.
//
//   u_t = alpha u_xx,  u(0)=u(L)=0,  u(x,0) = spike at the center
//
// Each step is one ODIN slice expression:
//   u[1:-1] += r * (u[2:] - 2 u[1:-1] + u[:-2])
// and the result is written with the distributed IO layer.
//
// Run:  ./heat1d [n] [steps] [nranks]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "comm/runner.hpp"
#include "odin/io.hpp"
#include "odin/expr.hpp"
#include "odin/slicing.hpp"
#include "odin/ufunc.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
using Arr = od::DistArray<double>;

int main(int argc, char** argv) {
  const od::index_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 200;
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const double r = 0.25;  // alpha dt / dx^2, stable for r <= 0.5

  pc::run(nranks, [n, steps, r](pc::Communicator& comm) {
    const bool root = comm.rank() == 0;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);

    // Initial condition: unit spike in the middle.
    Arr u = Arr::zeros(dist);
    u.set_global({n / 2}, 1.0);
    const double total0 = u.sum();

    for (int step = 0; step < steps; ++step) {
      using od::Slice;
      auto mid = od::slice(u, {Slice::range(1, -1)});
      auto left = od::slice(u, {Slice::to(-2)});
      auto right = od::slice(u, {Slice::from(2)});
      // u_new interior = mid + r (right - 2 mid + left), fused in one pass.
      auto interior = od::eval(od::lazy(mid) * (1.0 - 2.0 * r) +
                               (od::lazy(left) + od::lazy(right)) * r);
      // Scatter the interior back into u at offset +1 (boundaries stay
      // zero). Interior's block cuts are shifted by one relative to u's,
      // so route each value to the rank owning u[g+1].
      struct Entry {
        od::index_t target_local;
        double value;
      };
      std::vector<std::vector<Entry>> outgoing(
          static_cast<std::size_t>(comm.size()));
      auto inner_view = interior.local_view();
      for (od::index_t l = 0; l < interior.local_size(); ++l) {
        const auto g = interior.dist().global_of_local(l);
        const auto [owner, lidx] = u.dist().owner_of(std::vector<od::index_t>{g[0] + 1});
        outgoing[static_cast<std::size_t>(owner)].push_back(
            Entry{lidx, inner_view[static_cast<std::size_t>(l)]});
      }
      auto incoming = comm.alltoallv(outgoing);
      auto uv = u.local_view();
      for (const auto& part : incoming) {
        for (const auto& e : part) {
          uv[static_cast<std::size_t>(e.target_local)] = e.value;
        }
      }
      if ((step + 1) % 50 == 0) {
        const double peak = u.max();  // collective: every rank participates
        const double mass = u.sum();
        if (root) {
          std::printf("step %4d: max u = %.6f, mass = %.6f\n", step + 1, peak,
                      mass);
        }
      }
    }

    // Physical sanity: diffusion conserves interior mass until it leaks
    // through the boundaries; the peak decays monotonically.
    const double total = u.sum();
    if (root) {
      std::printf("mass: initial %.4f -> final %.4f (boundary leakage)\n",
                  total0, total);
    }

    // Distributed IO: write, read back under a cyclic layout, verify.
    const std::string path = "/tmp/heat1d_result.bin";
    od::write_distributed(u, path);
    auto cyc = od::Distribution::cyclic(comm, od::Shape({n}), 0);
    auto back = od::read_distributed(cyc, path);
    const double back_sum = back.sum();  // collective
    const double diff = std::abs(back_sum - total);
    if (root) {
      std::printf("io round-trip (block -> file -> cyclic): |mass diff| = %.2e\n",
                  diff);
    }
  });
  return 0;
}
