// Quickstart: a ten-minute tour of the three components.
//
//   1. ODIN       — create distributed arrays and compute on them globally.
//   2. PyTrilinos — hand an ODIN array to the distributed solver stack.
//   3. Seamless   — compile a Python-subset kernel and call it from C++.
//
// Run:  ./quickstart [nranks]
#include <cstdio>
#include <cstdlib>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "odin/interop.hpp"
#include "odin/slicing.hpp"
#include "odin/ufunc.hpp"
#include "precond/amg.hpp"
#include "seamless/seamless.hpp"
#include "solvers/krylov.hpp"

namespace pc = pyhpc::comm;
namespace od = pyhpc::odin;
namespace gl = pyhpc::galeri;
namespace sm = pyhpc::seamless;
using Arr = od::DistArray<double>;

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;

  pc::run(nranks, [](pc::Communicator& comm) {
    const bool root = comm.rank() == 0;

    // ---- 1. ODIN: global-mode distributed arrays -----------------------
    const od::index_t n = 1 << 16;
    auto dist = od::Distribution::block(comm, od::Shape({n}), 0);
    auto x = Arr::linspace(dist, 0.0, 6.283185307179586);
    auto y = od::sin(x);
    // NumPy-style slicing with automatic communication:
    auto dy = od::slice1d(y, od::Slice::from(1)) -
              od::slice1d(y, od::Slice::to(-1));
    const double sum_sin = y.sum();      // collective: every rank calls
    const double max_dy = dy.max();
    if (root) {
      std::printf("[odin]      n=%lld ranks=%d  sum(sin)=%.6f  max|dy|=%.2e\n",
                  static_cast<long long>(n), comm.size(), sum_sin, max_dy);
    }

    // ---- 2. Solver stack: ODIN array -> Tpetra vector -> AMG-CG --------
    auto a = gl::laplace1d(od::tpetra_map_of(dist));
    auto b = gl::rhs_for_ones(a);  // exact solution: all ones
    gl::Vector sol(a.domain_map(), 0.0);
    pyhpc::precond::AmgPreconditioner amg(a);
    auto result = pyhpc::solvers::cg_solve(a, b, sol, {}, &amg);
    auto sol_odin = od::from_tpetra(sol);  // back to ODIN land
    const double mean_x = sol_odin.mean();  // collective
    if (root) {
      std::printf("[solvers]   AMG-CG on 1D Laplacian(%lld): %s; mean(x)=%.6f\n",
                  static_cast<long long>(n), result.summary().c_str(), mean_x);
    }
  });

  // ---- 3. Seamless: compile Python-subset code, call from C++ ----------
  sm::Engine engine(
      "def smooth(u, out):\n"
      "    out[0] = u[0]\n"
      "    for i in range(1, len(u) - 1):\n"
      "        out[i] = 0.25 * u[i - 1] + 0.5 * u[i] + 0.25 * u[i + 1]\n"
      "    out[len(u) - 1] = u[len(u) - 1]\n"
      "    return 0\n");
  std::vector<double> u(32, 0.0), out(32, 0.0);
  u[16] = 1.0;  // a spike to smooth
  auto vu = sm::Value::of(sm::ArrayValue::view(u.data(), u.size()));
  auto vo = sm::Value::of(sm::ArrayValue::view(out.data(), out.size()));
  engine.run_jit("smooth", {vu, vo});
  std::printf("[seamless]  jit smooth: u[15..17]=(%.3f, %.3f, %.3f)\n",
              out[15], out[16], out[17]);

  // The embed API (paper §IV.D): Python-defined sum used from C++.
  int arr[100];
  for (int i = 0; i < 100; ++i) arr[i] = i;
  std::printf("[seamless]  numpy::sum(int arr[100]) = %.1f\n",
              sm::numpy::sum(arr));
  return 0;
}
