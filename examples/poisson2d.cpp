// Poisson solve on the unit square — the finite-element/solver-stack
// scenario the paper's §III.F motivates ("sparse arrays to be passed to
// the wrapped Trilinos solvers").
//
// Solves -Δu = f on a uniform grid with Dirichlet boundary, where f is
// manufactured so the exact solution is u* = sin(πx) sin(πy). Compares
// the preconditioner ladder and reports errors against u*.
//
// Run:  ./poisson2d [grid] [nranks]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "comm/runner.hpp"
#include "galeri/gallery.hpp"
#include "precond/amg.hpp"
#include "precond/preconditioner.hpp"
#include "solvers/krylov.hpp"
#include "teuchos/timer.hpp"

namespace pc = pyhpc::comm;
namespace gl = pyhpc::galeri;
namespace pp = pyhpc::precond;
namespace sv = pyhpc::solvers;

int main(int argc, char** argv) {
  const std::int64_t grid = argc > 1 ? std::atoll(argv[1]) : 48;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 4;

  pc::run(nranks, [grid](pc::Communicator& comm) {
    const bool root = comm.rank() == 0;
    const double h = 1.0 / static_cast<double>(grid + 1);

    // Matrix: 5-point Laplacian (scaled by 1/h^2 through the RHS instead).
    auto a = gl::laplace2d(comm, grid, grid);

    // RHS: f = 2 pi^2 sin(pi x) sin(pi y), so that A u = h^2 f matches the
    // stencil convention of galeri::laplace2d.
    gl::Vector b(a.range_map());
    for (std::int32_t l = 0; l < a.num_local_rows(); ++l) {
      const std::int64_t g = a.row_map().local_to_global(l);
      const double x = h * static_cast<double>(g % grid + 1);
      const double y = h * static_cast<double>(g / grid + 1);
      b[l] = h * h * 2.0 * M_PI * M_PI * std::sin(M_PI * x) *
             std::sin(M_PI * y);
    }

    if (root) {
      std::printf("Poisson on %lldx%lld grid (%lld unknowns), %d ranks\n",
                  static_cast<long long>(grid), static_cast<long long>(grid),
                  static_cast<long long>(grid * grid), comm.size());
    }

    // --- Accuracy: manufactured solution u* = sin(pi x) sin(pi y) -------
    // (This RHS is an eigenvector of the discrete Laplacian, so CG solves
    // it in one step — accuracy check only, not a solver comparison.)
    {
      gl::Vector u(a.domain_map(), 0.0);
      pp::AmgPreconditioner amg(a);
      sv::KrylovOptions opt;
      opt.max_iterations = 10000;
      auto result = sv::cg_solve(a, b, u, opt, &amg);
      double err = 0.0;
      for (std::int32_t l = 0; l < u.local_size(); ++l) {
        const std::int64_t g = u.map().local_to_global(l);
        const double x = h * static_cast<double>(g % grid + 1);
        const double y = h * static_cast<double>(g / grid + 1);
        err = std::max(err,
                       std::abs(u[l] - std::sin(M_PI * x) * std::sin(M_PI * y)));
      }
      err = comm.allreduce_value(err, [](double p, double q) {
        return std::max(p, q);
      });
      if (root) {
        std::printf("discretization check: %s, max|u - u*| = %.3e "
                    "(expected O(h^2) = %.1e)\n",
                    result.summary().c_str(), err,
                    M_PI * M_PI * h * h / 4.0);
      }
    }

    // --- Solver ladder on a rough right-hand side ------------------------
    // A random RHS excites every mode, so iteration counts show the real
    // preconditioner quality ordering.
    gl::Vector rough(a.range_map());
    rough.randomize(2026);
    if (root) {
      std::printf("%-14s %10s %12s %16s\n", "preconditioner", "iters",
                  "time (s)", "rel residual");
    }
    for (const char* kind : {"none", "jacobi", "ilu0", "amg"}) {
      gl::Vector u(a.domain_map(), 0.0);
      std::unique_ptr<pp::Preconditioner> m;
      if (std::string(kind) == "amg") {
        m = std::make_unique<pp::AmgPreconditioner>(a);
      } else if (std::string(kind) != "none") {
        m = pp::create_preconditioner(kind, a);
      }
      pyhpc::teuchos::Timer timer(kind);
      timer.start();
      sv::KrylovOptions opt;
      opt.max_iterations = 10000;
      auto result = sv::cg_solve(a, rough, u, opt, m.get());
      timer.stop();
      if (root) {
        std::printf("%-14s %10d %12.4f %16.3e %s\n", kind, result.iterations,
                    timer.total_seconds(), result.achieved_tolerance,
                    result.converged ? "" : "(NOT CONVERGED)");
      }
    }
  });
  return 0;
}
