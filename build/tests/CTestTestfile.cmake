# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/teuchos_test[1]_include.cmake")
include("/root/repo/build/tests/tpetra_map_test[1]_include.cmake")
include("/root/repo/build/tests/tpetra_vector_test[1]_include.cmake")
include("/root/repo/build/tests/tpetra_crs_test[1]_include.cmake")
include("/root/repo/build/tests/galeri_test[1]_include.cmake")
include("/root/repo/build/tests/precond_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/epetraext_test[1]_include.cmake")
include("/root/repo/build/tests/isorropia_komplex_test[1]_include.cmake")
include("/root/repo/build/tests/odin_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/odin_array_test[1]_include.cmake")
include("/root/repo/build/tests/odin_slicing_expr_test[1]_include.cmake")
include("/root/repo/build/tests/odin_local_tabular_test[1]_include.cmake")
include("/root/repo/build/tests/seamless_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/seamless_backend_test[1]_include.cmake")
include("/root/repo/build/tests/seamless_transpile_test[1]_include.cmake")
include("/root/repo/build/tests/odin_reduce_axis_test[1]_include.cmake")
include("/root/repo/build/tests/hardening_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
