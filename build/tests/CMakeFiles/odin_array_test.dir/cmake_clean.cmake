file(REMOVE_RECURSE
  "CMakeFiles/odin_array_test.dir/odin_array_test.cpp.o"
  "CMakeFiles/odin_array_test.dir/odin_array_test.cpp.o.d"
  "odin_array_test"
  "odin_array_test.pdb"
  "odin_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
