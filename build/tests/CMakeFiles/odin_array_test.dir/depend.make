# Empty dependencies file for odin_array_test.
# This may be replaced when dependencies are built.
