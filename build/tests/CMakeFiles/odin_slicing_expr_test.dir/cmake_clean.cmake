file(REMOVE_RECURSE
  "CMakeFiles/odin_slicing_expr_test.dir/odin_slicing_expr_test.cpp.o"
  "CMakeFiles/odin_slicing_expr_test.dir/odin_slicing_expr_test.cpp.o.d"
  "odin_slicing_expr_test"
  "odin_slicing_expr_test.pdb"
  "odin_slicing_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_slicing_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
