# Empty compiler generated dependencies file for odin_slicing_expr_test.
# This may be replaced when dependencies are built.
