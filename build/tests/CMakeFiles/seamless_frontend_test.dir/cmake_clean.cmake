file(REMOVE_RECURSE
  "CMakeFiles/seamless_frontend_test.dir/seamless_frontend_test.cpp.o"
  "CMakeFiles/seamless_frontend_test.dir/seamless_frontend_test.cpp.o.d"
  "seamless_frontend_test"
  "seamless_frontend_test.pdb"
  "seamless_frontend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seamless_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
