# Empty dependencies file for seamless_frontend_test.
# This may be replaced when dependencies are built.
