# Empty compiler generated dependencies file for precond_test.
# This may be replaced when dependencies are built.
