file(REMOVE_RECURSE
  "CMakeFiles/precond_test.dir/precond_test.cpp.o"
  "CMakeFiles/precond_test.dir/precond_test.cpp.o.d"
  "precond_test"
  "precond_test.pdb"
  "precond_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/precond_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
