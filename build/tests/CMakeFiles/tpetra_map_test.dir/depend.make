# Empty dependencies file for tpetra_map_test.
# This may be replaced when dependencies are built.
