file(REMOVE_RECURSE
  "CMakeFiles/tpetra_map_test.dir/tpetra_map_test.cpp.o"
  "CMakeFiles/tpetra_map_test.dir/tpetra_map_test.cpp.o.d"
  "tpetra_map_test"
  "tpetra_map_test.pdb"
  "tpetra_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpetra_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
