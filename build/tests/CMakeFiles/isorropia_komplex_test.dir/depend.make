# Empty dependencies file for isorropia_komplex_test.
# This may be replaced when dependencies are built.
