file(REMOVE_RECURSE
  "CMakeFiles/isorropia_komplex_test.dir/isorropia_komplex_test.cpp.o"
  "CMakeFiles/isorropia_komplex_test.dir/isorropia_komplex_test.cpp.o.d"
  "isorropia_komplex_test"
  "isorropia_komplex_test.pdb"
  "isorropia_komplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isorropia_komplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
