# Empty dependencies file for odin_reduce_axis_test.
# This may be replaced when dependencies are built.
