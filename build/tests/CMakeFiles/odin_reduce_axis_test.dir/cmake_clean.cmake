file(REMOVE_RECURSE
  "CMakeFiles/odin_reduce_axis_test.dir/odin_reduce_axis_test.cpp.o"
  "CMakeFiles/odin_reduce_axis_test.dir/odin_reduce_axis_test.cpp.o.d"
  "odin_reduce_axis_test"
  "odin_reduce_axis_test.pdb"
  "odin_reduce_axis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_reduce_axis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
