# Empty dependencies file for seamless_transpile_test.
# This may be replaced when dependencies are built.
