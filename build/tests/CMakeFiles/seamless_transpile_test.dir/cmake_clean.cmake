file(REMOVE_RECURSE
  "CMakeFiles/seamless_transpile_test.dir/seamless_transpile_test.cpp.o"
  "CMakeFiles/seamless_transpile_test.dir/seamless_transpile_test.cpp.o.d"
  "seamless_transpile_test"
  "seamless_transpile_test.pdb"
  "seamless_transpile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seamless_transpile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
