# Empty compiler generated dependencies file for epetraext_test.
# This may be replaced when dependencies are built.
