file(REMOVE_RECURSE
  "CMakeFiles/epetraext_test.dir/epetraext_test.cpp.o"
  "CMakeFiles/epetraext_test.dir/epetraext_test.cpp.o.d"
  "epetraext_test"
  "epetraext_test.pdb"
  "epetraext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epetraext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
