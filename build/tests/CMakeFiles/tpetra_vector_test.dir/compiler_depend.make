# Empty compiler generated dependencies file for tpetra_vector_test.
# This may be replaced when dependencies are built.
