file(REMOVE_RECURSE
  "CMakeFiles/tpetra_vector_test.dir/tpetra_vector_test.cpp.o"
  "CMakeFiles/tpetra_vector_test.dir/tpetra_vector_test.cpp.o.d"
  "tpetra_vector_test"
  "tpetra_vector_test.pdb"
  "tpetra_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpetra_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
