# Empty compiler generated dependencies file for odin_local_tabular_test.
# This may be replaced when dependencies are built.
