file(REMOVE_RECURSE
  "CMakeFiles/odin_local_tabular_test.dir/odin_local_tabular_test.cpp.o"
  "CMakeFiles/odin_local_tabular_test.dir/odin_local_tabular_test.cpp.o.d"
  "odin_local_tabular_test"
  "odin_local_tabular_test.pdb"
  "odin_local_tabular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_local_tabular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
