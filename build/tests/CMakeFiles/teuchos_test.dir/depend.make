# Empty dependencies file for teuchos_test.
# This may be replaced when dependencies are built.
