file(REMOVE_RECURSE
  "CMakeFiles/teuchos_test.dir/teuchos_test.cpp.o"
  "CMakeFiles/teuchos_test.dir/teuchos_test.cpp.o.d"
  "teuchos_test"
  "teuchos_test.pdb"
  "teuchos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/teuchos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
