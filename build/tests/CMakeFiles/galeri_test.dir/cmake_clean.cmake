file(REMOVE_RECURSE
  "CMakeFiles/galeri_test.dir/galeri_test.cpp.o"
  "CMakeFiles/galeri_test.dir/galeri_test.cpp.o.d"
  "galeri_test"
  "galeri_test.pdb"
  "galeri_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galeri_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
