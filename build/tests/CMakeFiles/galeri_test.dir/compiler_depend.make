# Empty compiler generated dependencies file for galeri_test.
# This may be replaced when dependencies are built.
