file(REMOVE_RECURSE
  "CMakeFiles/odin_distribution_test.dir/odin_distribution_test.cpp.o"
  "CMakeFiles/odin_distribution_test.dir/odin_distribution_test.cpp.o.d"
  "odin_distribution_test"
  "odin_distribution_test.pdb"
  "odin_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odin_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
