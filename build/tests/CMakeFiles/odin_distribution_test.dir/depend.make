# Empty dependencies file for odin_distribution_test.
# This may be replaced when dependencies are built.
