file(REMOVE_RECURSE
  "CMakeFiles/seamless_backend_test.dir/seamless_backend_test.cpp.o"
  "CMakeFiles/seamless_backend_test.dir/seamless_backend_test.cpp.o.d"
  "seamless_backend_test"
  "seamless_backend_test.pdb"
  "seamless_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seamless_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
