# Empty compiler generated dependencies file for seamless_backend_test.
# This may be replaced when dependencies are built.
