# Empty compiler generated dependencies file for tpetra_crs_test.
# This may be replaced when dependencies are built.
