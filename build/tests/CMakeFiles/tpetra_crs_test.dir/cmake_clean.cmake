file(REMOVE_RECURSE
  "CMakeFiles/tpetra_crs_test.dir/tpetra_crs_test.cpp.o"
  "CMakeFiles/tpetra_crs_test.dir/tpetra_crs_test.cpp.o.d"
  "tpetra_crs_test"
  "tpetra_crs_test.pdb"
  "tpetra_crs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpetra_crs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
