# Empty dependencies file for tpetra_crs_test.
# This may be replaced when dependencies are built.
