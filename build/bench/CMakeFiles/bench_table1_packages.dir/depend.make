# Empty dependencies file for bench_table1_packages.
# This may be replaced when dependencies are built.
