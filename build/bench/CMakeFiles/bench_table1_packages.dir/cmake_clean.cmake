file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_packages.dir/bench_table1_packages.cpp.o"
  "CMakeFiles/bench_table1_packages.dir/bench_table1_packages.cpp.o.d"
  "bench_table1_packages"
  "bench_table1_packages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_packages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
