# Empty dependencies file for bench_e10_fusion.
# This may be replaced when dependencies are built.
