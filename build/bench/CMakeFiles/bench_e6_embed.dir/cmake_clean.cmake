file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_embed.dir/bench_e6_embed.cpp.o"
  "CMakeFiles/bench_e6_embed.dir/bench_e6_embed.cpp.o.d"
  "bench_e6_embed"
  "bench_e6_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
