file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_mapreduce.dir/bench_e9_mapreduce.cpp.o"
  "CMakeFiles/bench_e9_mapreduce.dir/bench_e9_mapreduce.cpp.o.d"
  "bench_e9_mapreduce"
  "bench_e9_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
