file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_ffi.dir/bench_e5_ffi.cpp.o"
  "CMakeFiles/bench_e5_ffi.dir/bench_e5_ffi.cpp.o.d"
  "bench_e5_ffi"
  "bench_e5_ffi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_ffi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
