# Empty compiler generated dependencies file for bench_e5_ffi.
# This may be replaced when dependencies are built.
