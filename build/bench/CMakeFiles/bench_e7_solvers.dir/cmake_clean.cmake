file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_solvers.dir/bench_e7_solvers.cpp.o"
  "CMakeFiles/bench_e7_solvers.dir/bench_e7_solvers.cpp.o.d"
  "bench_e7_solvers"
  "bench_e7_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
