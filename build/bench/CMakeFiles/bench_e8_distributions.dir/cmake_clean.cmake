file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_distributions.dir/bench_e8_distributions.cpp.o"
  "CMakeFiles/bench_e8_distributions.dir/bench_e8_distributions.cpp.o.d"
  "bench_e8_distributions"
  "bench_e8_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
