# Empty dependencies file for bench_e1_hypot.
# This may be replaced when dependencies are built.
