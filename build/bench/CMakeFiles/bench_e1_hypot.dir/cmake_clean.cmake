file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_hypot.dir/bench_e1_hypot.cpp.o"
  "CMakeFiles/bench_e1_hypot.dir/bench_e1_hypot.cpp.o.d"
  "bench_e1_hypot"
  "bench_e1_hypot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_hypot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
