file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_findiff.dir/bench_e3_findiff.cpp.o"
  "CMakeFiles/bench_e3_findiff.dir/bench_e3_findiff.cpp.o.d"
  "bench_e3_findiff"
  "bench_e3_findiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_findiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
