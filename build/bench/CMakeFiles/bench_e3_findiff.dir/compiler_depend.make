# Empty compiler generated dependencies file for bench_e3_findiff.
# This may be replaced when dependencies are built.
