file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_ufunc.dir/bench_e2_ufunc.cpp.o"
  "CMakeFiles/bench_e2_ufunc.dir/bench_e2_ufunc.cpp.o.d"
  "bench_e2_ufunc"
  "bench_e2_ufunc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_ufunc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
