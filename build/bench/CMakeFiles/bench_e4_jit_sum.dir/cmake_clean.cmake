file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_jit_sum.dir/bench_e4_jit_sum.cpp.o"
  "CMakeFiles/bench_e4_jit_sum.dir/bench_e4_jit_sum.cpp.o.d"
  "bench_e4_jit_sum"
  "bench_e4_jit_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_jit_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
