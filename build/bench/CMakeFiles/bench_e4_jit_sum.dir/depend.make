# Empty dependencies file for bench_e4_jit_sum.
# This may be replaced when dependencies are built.
