
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/pyhpc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/teuchos/CMakeFiles/pyhpc_teuchos.dir/DependInfo.cmake"
  "/root/repo/build/src/precond/CMakeFiles/pyhpc_precond.dir/DependInfo.cmake"
  "/root/repo/build/src/solvers/CMakeFiles/pyhpc_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/epetraext/CMakeFiles/pyhpc_epetraext.dir/DependInfo.cmake"
  "/root/repo/build/src/isorropia/CMakeFiles/pyhpc_isorropia.dir/DependInfo.cmake"
  "/root/repo/build/src/komplex/CMakeFiles/pyhpc_komplex.dir/DependInfo.cmake"
  "/root/repo/build/src/odin/CMakeFiles/pyhpc_odin.dir/DependInfo.cmake"
  "/root/repo/build/src/seamless/CMakeFiles/pyhpc_seamless.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
