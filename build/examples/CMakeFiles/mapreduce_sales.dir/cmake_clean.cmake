file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_sales.dir/mapreduce_sales.cpp.o"
  "CMakeFiles/mapreduce_sales.dir/mapreduce_sales.cpp.o.d"
  "mapreduce_sales"
  "mapreduce_sales.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_sales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
