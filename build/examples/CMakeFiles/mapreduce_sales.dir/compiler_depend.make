# Empty compiler generated dependencies file for mapreduce_sales.
# This may be replaced when dependencies are built.
