# Empty compiler generated dependencies file for jit_kernel.
# This may be replaced when dependencies are built.
