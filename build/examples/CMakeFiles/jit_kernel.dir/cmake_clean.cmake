file(REMOVE_RECURSE
  "CMakeFiles/jit_kernel.dir/jit_kernel.cpp.o"
  "CMakeFiles/jit_kernel.dir/jit_kernel.cpp.o.d"
  "jit_kernel"
  "jit_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jit_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
