# Empty dependencies file for pyhpc_util.
# This may be replaced when dependencies are built.
