file(REMOVE_RECURSE
  "libpyhpc_util.a"
)
