file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_util.dir/dense_lu.cpp.o"
  "CMakeFiles/pyhpc_util.dir/dense_lu.cpp.o.d"
  "CMakeFiles/pyhpc_util.dir/random.cpp.o"
  "CMakeFiles/pyhpc_util.dir/random.cpp.o.d"
  "CMakeFiles/pyhpc_util.dir/string_util.cpp.o"
  "CMakeFiles/pyhpc_util.dir/string_util.cpp.o.d"
  "libpyhpc_util.a"
  "libpyhpc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
