file(REMOVE_RECURSE
  "libpyhpc_odin.a"
)
