file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_odin.dir/dist_array.cpp.o"
  "CMakeFiles/pyhpc_odin.dir/dist_array.cpp.o.d"
  "CMakeFiles/pyhpc_odin.dir/distribution.cpp.o"
  "CMakeFiles/pyhpc_odin.dir/distribution.cpp.o.d"
  "CMakeFiles/pyhpc_odin.dir/driver.cpp.o"
  "CMakeFiles/pyhpc_odin.dir/driver.cpp.o.d"
  "CMakeFiles/pyhpc_odin.dir/io.cpp.o"
  "CMakeFiles/pyhpc_odin.dir/io.cpp.o.d"
  "CMakeFiles/pyhpc_odin.dir/local.cpp.o"
  "CMakeFiles/pyhpc_odin.dir/local.cpp.o.d"
  "CMakeFiles/pyhpc_odin.dir/ufunc.cpp.o"
  "CMakeFiles/pyhpc_odin.dir/ufunc.cpp.o.d"
  "libpyhpc_odin.a"
  "libpyhpc_odin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_odin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
