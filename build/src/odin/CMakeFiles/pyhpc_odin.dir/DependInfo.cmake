
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/odin/dist_array.cpp" "src/odin/CMakeFiles/pyhpc_odin.dir/dist_array.cpp.o" "gcc" "src/odin/CMakeFiles/pyhpc_odin.dir/dist_array.cpp.o.d"
  "/root/repo/src/odin/distribution.cpp" "src/odin/CMakeFiles/pyhpc_odin.dir/distribution.cpp.o" "gcc" "src/odin/CMakeFiles/pyhpc_odin.dir/distribution.cpp.o.d"
  "/root/repo/src/odin/driver.cpp" "src/odin/CMakeFiles/pyhpc_odin.dir/driver.cpp.o" "gcc" "src/odin/CMakeFiles/pyhpc_odin.dir/driver.cpp.o.d"
  "/root/repo/src/odin/io.cpp" "src/odin/CMakeFiles/pyhpc_odin.dir/io.cpp.o" "gcc" "src/odin/CMakeFiles/pyhpc_odin.dir/io.cpp.o.d"
  "/root/repo/src/odin/local.cpp" "src/odin/CMakeFiles/pyhpc_odin.dir/local.cpp.o" "gcc" "src/odin/CMakeFiles/pyhpc_odin.dir/local.cpp.o.d"
  "/root/repo/src/odin/ufunc.cpp" "src/odin/CMakeFiles/pyhpc_odin.dir/ufunc.cpp.o" "gcc" "src/odin/CMakeFiles/pyhpc_odin.dir/ufunc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/pyhpc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
