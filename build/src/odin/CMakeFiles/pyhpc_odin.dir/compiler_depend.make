# Empty compiler generated dependencies file for pyhpc_odin.
# This may be replaced when dependencies are built.
