file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_precond.dir/amg.cpp.o"
  "CMakeFiles/pyhpc_precond.dir/amg.cpp.o.d"
  "CMakeFiles/pyhpc_precond.dir/ilu0.cpp.o"
  "CMakeFiles/pyhpc_precond.dir/ilu0.cpp.o.d"
  "libpyhpc_precond.a"
  "libpyhpc_precond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
