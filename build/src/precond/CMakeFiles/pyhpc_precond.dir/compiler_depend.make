# Empty compiler generated dependencies file for pyhpc_precond.
# This may be replaced when dependencies are built.
