file(REMOVE_RECURSE
  "libpyhpc_precond.a"
)
