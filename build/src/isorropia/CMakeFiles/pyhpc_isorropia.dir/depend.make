# Empty dependencies file for pyhpc_isorropia.
# This may be replaced when dependencies are built.
