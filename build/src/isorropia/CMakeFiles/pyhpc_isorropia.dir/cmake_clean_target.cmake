file(REMOVE_RECURSE
  "libpyhpc_isorropia.a"
)
