file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_isorropia.dir/partition.cpp.o"
  "CMakeFiles/pyhpc_isorropia.dir/partition.cpp.o.d"
  "libpyhpc_isorropia.a"
  "libpyhpc_isorropia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_isorropia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
