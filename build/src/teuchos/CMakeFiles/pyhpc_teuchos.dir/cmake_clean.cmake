file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_teuchos.dir/parameter_list.cpp.o"
  "CMakeFiles/pyhpc_teuchos.dir/parameter_list.cpp.o.d"
  "CMakeFiles/pyhpc_teuchos.dir/timer.cpp.o"
  "CMakeFiles/pyhpc_teuchos.dir/timer.cpp.o.d"
  "libpyhpc_teuchos.a"
  "libpyhpc_teuchos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_teuchos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
