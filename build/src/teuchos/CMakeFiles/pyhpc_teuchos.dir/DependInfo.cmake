
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/teuchos/parameter_list.cpp" "src/teuchos/CMakeFiles/pyhpc_teuchos.dir/parameter_list.cpp.o" "gcc" "src/teuchos/CMakeFiles/pyhpc_teuchos.dir/parameter_list.cpp.o.d"
  "/root/repo/src/teuchos/timer.cpp" "src/teuchos/CMakeFiles/pyhpc_teuchos.dir/timer.cpp.o" "gcc" "src/teuchos/CMakeFiles/pyhpc_teuchos.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
