# Empty compiler generated dependencies file for pyhpc_teuchos.
# This may be replaced when dependencies are built.
