file(REMOVE_RECURSE
  "libpyhpc_teuchos.a"
)
