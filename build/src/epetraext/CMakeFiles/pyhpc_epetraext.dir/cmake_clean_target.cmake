file(REMOVE_RECURSE
  "libpyhpc_epetraext.a"
)
