# Empty dependencies file for pyhpc_epetraext.
# This may be replaced when dependencies are built.
