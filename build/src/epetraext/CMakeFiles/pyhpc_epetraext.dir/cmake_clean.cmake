file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_epetraext.dir/epetraext.cpp.o"
  "CMakeFiles/pyhpc_epetraext.dir/epetraext.cpp.o.d"
  "libpyhpc_epetraext.a"
  "libpyhpc_epetraext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_epetraext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
