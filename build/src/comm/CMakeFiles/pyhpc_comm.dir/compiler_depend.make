# Empty compiler generated dependencies file for pyhpc_comm.
# This may be replaced when dependencies are built.
