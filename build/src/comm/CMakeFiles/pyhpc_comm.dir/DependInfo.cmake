
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/communicator.cpp" "src/comm/CMakeFiles/pyhpc_comm.dir/communicator.cpp.o" "gcc" "src/comm/CMakeFiles/pyhpc_comm.dir/communicator.cpp.o.d"
  "/root/repo/src/comm/context.cpp" "src/comm/CMakeFiles/pyhpc_comm.dir/context.cpp.o" "gcc" "src/comm/CMakeFiles/pyhpc_comm.dir/context.cpp.o.d"
  "/root/repo/src/comm/mailbox.cpp" "src/comm/CMakeFiles/pyhpc_comm.dir/mailbox.cpp.o" "gcc" "src/comm/CMakeFiles/pyhpc_comm.dir/mailbox.cpp.o.d"
  "/root/repo/src/comm/runner.cpp" "src/comm/CMakeFiles/pyhpc_comm.dir/runner.cpp.o" "gcc" "src/comm/CMakeFiles/pyhpc_comm.dir/runner.cpp.o.d"
  "/root/repo/src/comm/stats.cpp" "src/comm/CMakeFiles/pyhpc_comm.dir/stats.cpp.o" "gcc" "src/comm/CMakeFiles/pyhpc_comm.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
