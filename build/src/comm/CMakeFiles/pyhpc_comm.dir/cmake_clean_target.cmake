file(REMOVE_RECURSE
  "libpyhpc_comm.a"
)
