file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_comm.dir/communicator.cpp.o"
  "CMakeFiles/pyhpc_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/pyhpc_comm.dir/context.cpp.o"
  "CMakeFiles/pyhpc_comm.dir/context.cpp.o.d"
  "CMakeFiles/pyhpc_comm.dir/mailbox.cpp.o"
  "CMakeFiles/pyhpc_comm.dir/mailbox.cpp.o.d"
  "CMakeFiles/pyhpc_comm.dir/runner.cpp.o"
  "CMakeFiles/pyhpc_comm.dir/runner.cpp.o.d"
  "CMakeFiles/pyhpc_comm.dir/stats.cpp.o"
  "CMakeFiles/pyhpc_comm.dir/stats.cpp.o.d"
  "libpyhpc_comm.a"
  "libpyhpc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
