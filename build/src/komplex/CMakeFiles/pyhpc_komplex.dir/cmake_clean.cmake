file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_komplex.dir/komplex.cpp.o"
  "CMakeFiles/pyhpc_komplex.dir/komplex.cpp.o.d"
  "libpyhpc_komplex.a"
  "libpyhpc_komplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_komplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
