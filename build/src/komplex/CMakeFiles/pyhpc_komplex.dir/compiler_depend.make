# Empty compiler generated dependencies file for pyhpc_komplex.
# This may be replaced when dependencies are built.
