file(REMOVE_RECURSE
  "libpyhpc_komplex.a"
)
