# CMake generated Testfile for 
# Source directory: /root/repo/src/komplex
# Build directory: /root/repo/build/src/komplex
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
