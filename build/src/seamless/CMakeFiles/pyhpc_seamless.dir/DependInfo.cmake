
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seamless/bc_compiler.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/bc_compiler.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/bc_compiler.cpp.o.d"
  "/root/repo/src/seamless/ffi.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/ffi.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/ffi.cpp.o.d"
  "/root/repo/src/seamless/interpreter.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/interpreter.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/interpreter.cpp.o.d"
  "/root/repo/src/seamless/jit.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/jit.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/jit.cpp.o.d"
  "/root/repo/src/seamless/lexer.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/lexer.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/lexer.cpp.o.d"
  "/root/repo/src/seamless/parser.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/parser.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/parser.cpp.o.d"
  "/root/repo/src/seamless/seamless.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/seamless.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/seamless.cpp.o.d"
  "/root/repo/src/seamless/transpile.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/transpile.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/transpile.cpp.o.d"
  "/root/repo/src/seamless/value.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/value.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/value.cpp.o.d"
  "/root/repo/src/seamless/vm.cpp" "src/seamless/CMakeFiles/pyhpc_seamless.dir/vm.cpp.o" "gcc" "src/seamless/CMakeFiles/pyhpc_seamless.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
