# Empty dependencies file for pyhpc_seamless.
# This may be replaced when dependencies are built.
