file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_seamless.dir/bc_compiler.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/bc_compiler.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/ffi.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/ffi.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/interpreter.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/interpreter.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/jit.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/jit.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/lexer.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/lexer.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/parser.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/parser.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/seamless.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/seamless.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/transpile.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/transpile.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/value.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/value.cpp.o.d"
  "CMakeFiles/pyhpc_seamless.dir/vm.cpp.o"
  "CMakeFiles/pyhpc_seamless.dir/vm.cpp.o.d"
  "libpyhpc_seamless.a"
  "libpyhpc_seamless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_seamless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
