file(REMOVE_RECURSE
  "libpyhpc_seamless.a"
)
