
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/amesos.cpp" "src/solvers/CMakeFiles/pyhpc_solvers.dir/amesos.cpp.o" "gcc" "src/solvers/CMakeFiles/pyhpc_solvers.dir/amesos.cpp.o.d"
  "/root/repo/src/solvers/anasazi.cpp" "src/solvers/CMakeFiles/pyhpc_solvers.dir/anasazi.cpp.o" "gcc" "src/solvers/CMakeFiles/pyhpc_solvers.dir/anasazi.cpp.o.d"
  "/root/repo/src/solvers/factory.cpp" "src/solvers/CMakeFiles/pyhpc_solvers.dir/factory.cpp.o" "gcc" "src/solvers/CMakeFiles/pyhpc_solvers.dir/factory.cpp.o.d"
  "/root/repo/src/solvers/krylov.cpp" "src/solvers/CMakeFiles/pyhpc_solvers.dir/krylov.cpp.o" "gcc" "src/solvers/CMakeFiles/pyhpc_solvers.dir/krylov.cpp.o.d"
  "/root/repo/src/solvers/nox.cpp" "src/solvers/CMakeFiles/pyhpc_solvers.dir/nox.cpp.o" "gcc" "src/solvers/CMakeFiles/pyhpc_solvers.dir/nox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/precond/CMakeFiles/pyhpc_precond.dir/DependInfo.cmake"
  "/root/repo/build/src/teuchos/CMakeFiles/pyhpc_teuchos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/pyhpc_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
