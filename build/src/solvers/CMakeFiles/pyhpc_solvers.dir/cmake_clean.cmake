file(REMOVE_RECURSE
  "CMakeFiles/pyhpc_solvers.dir/amesos.cpp.o"
  "CMakeFiles/pyhpc_solvers.dir/amesos.cpp.o.d"
  "CMakeFiles/pyhpc_solvers.dir/anasazi.cpp.o"
  "CMakeFiles/pyhpc_solvers.dir/anasazi.cpp.o.d"
  "CMakeFiles/pyhpc_solvers.dir/factory.cpp.o"
  "CMakeFiles/pyhpc_solvers.dir/factory.cpp.o.d"
  "CMakeFiles/pyhpc_solvers.dir/krylov.cpp.o"
  "CMakeFiles/pyhpc_solvers.dir/krylov.cpp.o.d"
  "CMakeFiles/pyhpc_solvers.dir/nox.cpp.o"
  "CMakeFiles/pyhpc_solvers.dir/nox.cpp.o.d"
  "libpyhpc_solvers.a"
  "libpyhpc_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyhpc_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
