file(REMOVE_RECURSE
  "libpyhpc_solvers.a"
)
