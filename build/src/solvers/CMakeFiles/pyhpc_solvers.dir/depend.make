# Empty dependencies file for pyhpc_solvers.
# This may be replaced when dependencies are built.
