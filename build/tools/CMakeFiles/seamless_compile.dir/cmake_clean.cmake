file(REMOVE_RECURSE
  "CMakeFiles/seamless_compile.dir/seamless_compile.cpp.o"
  "CMakeFiles/seamless_compile.dir/seamless_compile.cpp.o.d"
  "seamless_compile"
  "seamless_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seamless_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
