
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/seamless_compile.cpp" "tools/CMakeFiles/seamless_compile.dir/seamless_compile.cpp.o" "gcc" "tools/CMakeFiles/seamless_compile.dir/seamless_compile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seamless/CMakeFiles/pyhpc_seamless.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pyhpc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
