# Empty dependencies file for seamless_compile.
# This may be replaced when dependencies are built.
